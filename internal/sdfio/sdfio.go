// Package sdfio reads and writes SDF graphs in a line-oriented text format
// used by the command-line tools:
//
//	# comment
//	graph myGraph
//	actor A
//	actor B
//	edge A B 2 3 0     # src dst prod cons delay (delay optional)
//
// Actor lines may be omitted: edge lines implicitly declare their endpoints
// in order of first mention.
package sdfio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sdf"
)

// Parse reads a graph from r.
func Parse(r io.Reader) (*sdf.Graph, error) {
	g := sdf.New("unnamed")
	sc := bufio.NewScanner(r)
	lineNo := 0
	ensure := func(name string) sdf.ActorID {
		if a, ok := g.ActorByName(name); ok {
			return a.ID
		}
		return g.AddActor(name)
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "graph":
			if len(fields) != 2 {
				return nil, fmt.Errorf("sdfio: line %d: graph needs a name", lineNo)
			}
			g.Name = fields[1]
		case "actor":
			if len(fields) != 2 {
				return nil, fmt.Errorf("sdfio: line %d: actor needs a name", lineNo)
			}
			if _, ok := g.ActorByName(fields[1]); ok {
				return nil, fmt.Errorf("sdfio: line %d: duplicate actor %q", lineNo, fields[1])
			}
			g.AddActor(fields[1])
		case "edge":
			if len(fields) < 5 || len(fields) > 7 {
				return nil, fmt.Errorf("sdfio: line %d: edge needs src dst prod cons [delay [words]]", lineNo)
			}
			src := ensure(fields[1])
			dst := ensure(fields[2])
			nums := make([]int64, 0, 4)
			for _, f := range fields[3:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("sdfio: line %d: bad number %q", lineNo, f)
				}
				nums = append(nums, v)
			}
			delay, words := int64(0), int64(1)
			if len(nums) >= 3 {
				delay = nums[2]
			}
			if len(nums) == 4 {
				words = nums[3]
			}
			if nums[0] <= 0 || nums[1] <= 0 || delay < 0 || words < 1 {
				return nil, fmt.Errorf("sdfio: line %d: invalid rates %v", lineNo, nums)
			}
			id := g.AddEdge(src, dst, nums[0], nums[1], delay)
			if words > 1 {
				g.SetWords(id, words)
			}
		default:
			return nil, fmt.Errorf("sdfio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.NumActors() == 0 {
		return nil, fmt.Errorf("sdfio: empty graph")
	}
	return g, nil
}

// Write serializes a graph in the same format.
func Write(w io.Writer, g *sdf.Graph) error {
	if _, err := fmt.Fprintf(w, "graph %s\n", g.Name); err != nil {
		return err
	}
	for _, a := range g.Actors() {
		if _, err := fmt.Fprintf(w, "actor %s\n", a.Name); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if e.Words > 1 {
			if _, err := fmt.Fprintf(w, "edge %s %s %d %d %d %d\n",
				g.Actor(e.Src).Name, g.Actor(e.Dst).Name, e.Prod, e.Cons, e.Delay, e.Words); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "edge %s %s %d %d %d\n",
			g.Actor(e.Src).Name, g.Actor(e.Dst).Name, e.Prod, e.Cons, e.Delay); err != nil {
			return err
		}
	}
	return nil
}
