package cluster

import (
	"math/rand"
	"time"
)

// Backoff produces a capped exponential retry schedule with equal jitter:
// attempt n waits base/2 + uniform(0, base/2) where base doubles from Min up
// to Max. Jitter comes from an explicitly seeded generator, so a Backoff is
// a pure function of (Min, Max, seed) — the bannedcall lint set forbids the
// ambient source here, and the schedule tests pin exact sequences.
//
// A Backoff is not safe for concurrent use; give each retry loop its own.
type Backoff struct {
	min, max time.Duration
	attempt  int
	rng      *rand.Rand
}

// NewBackoff returns a backoff stepping from min to max. Non-positive
// bounds default to 50ms..2s; max is raised to min if inverted.
func NewBackoff(min, max time.Duration, seed int64) *Backoff {
	if min <= 0 {
		min = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if max < min {
		max = min
	}
	return &Backoff{min: min, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the wait before the next attempt and advances the schedule.
func (b *Backoff) Next() time.Duration {
	base := b.min << uint(b.attempt)
	if base > b.max || base < b.min { // < min catches shift overflow
		base = b.max
	} else {
		b.attempt++
	}
	half := base / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}

// Reset rewinds the exponential schedule (the jitter stream continues).
// Call it after a success so the next failure starts from Min again.
func (b *Backoff) Reset() { b.attempt = 0 }
