package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tickClock is a fake clock whose After fires after a tiny real delay, so
// probe loops run fast without busy-spinning.
type tickClock struct{}

func (tickClock) Now() time.Time                       { return time.Unix(0, 0) }
func (tickClock) After(time.Duration) <-chan time.Time { return time.After(time.Millisecond) }

// transitions records OnChange calls.
type transitions struct {
	mu  sync.Mutex
	seq []string
}

func (tr *transitions) add(peer string, alive bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	state := "dead"
	if alive {
		state = "alive"
	}
	tr.seq = append(tr.seq, peer+"="+state)
}

func (tr *transitions) snapshot() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]string(nil), tr.seq...)
}

func TestMonitorTransitions(t *testing.T) {
	var up atomic.Bool
	up.Store(true)
	probeErr := errors.New("down")
	tr := &transitions{}
	m := NewMonitor(MonitorConfig{
		Peers: []string{"p:1"},
		Clock: tickClock{},
		Probe: func(ctx context.Context, peer string) error {
			if up.Load() {
				return nil
			}
			return probeErr
		},
		OnChange: tr.add,
	})
	if m.IsAlive("p:1") {
		t.Fatal("peer alive before any probe")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { m.Run(ctx); close(done) }()

	waitFor := func(want bool) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for m.IsAlive("p:1") != want {
			select {
			case <-deadline:
				t.Fatalf("peer never became alive=%v", want)
			case <-time.After(time.Millisecond):
			}
		}
	}
	waitFor(true)
	if m.AliveCount() != 1 {
		t.Fatalf("AliveCount = %d, want 1", m.AliveCount())
	}
	up.Store(false)
	waitFor(false)
	up.Store(true)
	waitFor(true)

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}

	// OnChange saw the initial verdict and both transitions, in order.
	seq := tr.snapshot()
	if len(seq) < 3 || seq[0] != "p:1=alive" {
		t.Fatalf("transitions %v: want initial alive then dead then alive", seq)
	}
	sawDead, sawRevive := false, false
	for _, s := range seq[1:] {
		if s == "p:1=dead" {
			sawDead = true
		}
		if sawDead && s == "p:1=alive" {
			sawRevive = true
		}
	}
	if !sawDead || !sawRevive {
		t.Fatalf("transitions %v: missing dead/revive", seq)
	}
}

// TestMonitorUnknownPeerAndOverride: unknown peers are dead; SetAlive
// forces a verdict for routing tests.
func TestMonitorUnknownPeerAndOverride(t *testing.T) {
	m := NewMonitor(MonitorConfig{Peers: []string{"a:1"}, Clock: tickClock{}})
	if m.IsAlive("nope:1") {
		t.Fatal("unknown peer reported alive")
	}
	m.SetAlive("a:1", true)
	if !m.IsAlive("a:1") {
		t.Fatal("SetAlive ignored")
	}
}

// TestMonitorProbesEachPeerIndependently: one dead peer doesn't block the
// other's alive verdict.
func TestMonitorProbesEachPeerIndependently(t *testing.T) {
	m := NewMonitor(MonitorConfig{
		Peers: []string{"good:1", "bad:1"},
		Clock: tickClock{},
		Probe: func(ctx context.Context, peer string) error {
			if peer == "good:1" {
				return nil
			}
			return errors.New("down")
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { m.Run(ctx); close(done) }()
	deadline := time.After(5 * time.Second)
	for !m.IsAlive("good:1") {
		select {
		case <-deadline:
			t.Fatal("good peer never alive")
		case <-time.After(time.Millisecond):
		}
	}
	if m.IsAlive("bad:1") {
		t.Fatal("bad peer reported alive")
	}
	cancel()
	<-done
}
