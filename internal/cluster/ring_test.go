package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func mustRing(t *testing.T, members ...string) *Ring {
	t.Helper()
	r, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty member set accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Fatal("empty member accepted")
	}
	r := mustRing(t, "c:1", "a:1", "b:1", "a:1")
	want := []string{"a:1", "b:1", "c:1"}
	if !reflect.DeepEqual(r.Members(), want) {
		t.Fatalf("members = %v, want sorted deduped %v", r.Members(), want)
	}
}

// TestOwnerOrderIndependent: rings over the same set, built in any order,
// route identically.
func TestOwnerOrderIndependent(t *testing.T) {
	r1 := mustRing(t, "a:1", "b:1", "c:1")
	r2 := mustRing(t, "c:1", "b:1", "a:1")
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("key %s: owner differs by construction order", k)
		}
	}
}

// TestOwnerGolden pins concrete routing decisions. If this test breaks, the
// sharding contract changed and RingVersion must be bumped with a migration
// plan — existing clusters would disagree about ownership otherwise.
func TestOwnerGolden(t *testing.T) {
	r := mustRing(t, "127.0.0.1:18431", "127.0.0.1:18432", "127.0.0.1:18433")
	got := make(map[string]string)
	for _, k := range []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"} {
		got[k] = r.Owner(k)
	}
	want := map[string]string{
		"k0": "127.0.0.1:18431",
		"k1": "127.0.0.1:18433",
		"k2": "127.0.0.1:18431",
		"k3": "127.0.0.1:18432",
		"k4": "127.0.0.1:18431",
		"k5": "127.0.0.1:18431",
		"k6": "127.0.0.1:18432",
		"k7": "127.0.0.1:18432",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden routing changed:\n got %v\nwant %v\n(bump RingVersion if intentional)", got, want)
	}
}

// TestBalance: over many keys, each of 3 members owns roughly a third.
func TestBalance(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	r := mustRing(t, members...)
	const n = 10000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / n
		if frac < 0.28 || frac > 0.39 {
			t.Errorf("member %s owns %.3f of keyspace, want ~0.333 (counts %v)", m, frac, counts)
		}
	}
}

// TestMinimalMovementRemove: dropping a member only moves the keys it
// owned; every other key keeps its owner.
func TestMinimalMovementRemove(t *testing.T) {
	full := mustRing(t, "a:1", "b:1", "c:1")
	reduced := mustRing(t, "a:1", "b:1")
	moved := 0
	const n = 10000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(k), reduced.Owner(k)
		if before == "c:1" {
			moved++
			continue // these must move somewhere
		}
		if before != after {
			t.Fatalf("key %s moved from surviving member %s to %s", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; balance test should have caught this")
	}
}

// TestMinimalMovementAdd: adding a member only steals keys; keys that stay
// with old members keep exactly their old owner.
func TestMinimalMovementAdd(t *testing.T) {
	small := mustRing(t, "a:1", "b:1", "c:1")
	grown := mustRing(t, "a:1", "b:1", "c:1", "d:1")
	stolen := 0
	const n = 10000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		before, after := small.Owner(k), grown.Owner(k)
		if after == "d:1" {
			stolen++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved %s -> %s without the new member taking it", k, before, after)
		}
	}
	// d should take roughly a quarter.
	frac := float64(stolen) / n
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("new member stole %.3f of keyspace, want ~0.25", frac)
	}
}

// TestRankedAgreesWithOwner: Ranked's head is Owner, the ranking is a
// permutation of the members, and dropping the head reproduces the
// reduced ring's choice — the fallback order IS minimal-movement rehash.
func TestRankedAgreesWithOwner(t *testing.T) {
	r := mustRing(t, "a:1", "b:1", "c:1")
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		ranked := r.Ranked(k)
		if len(ranked) != 3 {
			t.Fatalf("key %s: ranked %v not a permutation", k, ranked)
		}
		if ranked[0] != r.Owner(k) {
			t.Fatalf("key %s: ranked[0]=%s, Owner=%s", k, ranked[0], r.Owner(k))
		}
		rest := []string{}
		for _, m := range []string{"a:1", "b:1", "c:1"} {
			if m != ranked[0] {
				rest = append(rest, m)
			}
		}
		reduced := mustRing(t, rest...)
		if ranked[1] != reduced.Owner(k) {
			t.Fatalf("key %s: fallback %s disagrees with reduced-ring owner %s", k, ranked[1], reduced.Owner(k))
		}
	}
}

func TestOwnedFraction(t *testing.T) {
	r := mustRing(t, "a:1", "b:1", "c:1")
	total := 0.0
	for _, m := range r.Members() {
		f := r.OwnedFraction(m, 3000)
		if f < 0.25 || f > 0.45 {
			t.Errorf("member %s owned fraction %.3f, want ~0.333", m, f)
		}
		total += f
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("owned fractions sum to %.4f, want 1", total)
	}
	single := mustRing(t, "a:1")
	if f := single.OwnedFraction("a:1", 100); f != 1 {
		t.Errorf("single-member owned fraction = %v, want 1", f)
	}
}
