package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// peerStub serves /v1/peer/artifact/{digest} with configurable corruption.
type peerStub struct {
	artifact    []byte
	digest      string
	wrongDigest bool // echo a different digest header
	wrongSum    bool // lie about the checksum
	truncate    bool // send fewer bytes than hashed
	dropSum     bool // omit the checksum header
}

func (p *peerStub) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/peer/artifact/") {
			http.NotFound(w, r)
			return
		}
		got := strings.TrimPrefix(r.URL.Path, "/v1/peer/artifact/")
		if got != p.digest {
			http.NotFound(w, r)
			return
		}
		echo := p.digest
		if p.wrongDigest {
			echo = "deadbeef"
		}
		body := p.artifact
		sum := Sum(body)
		if p.wrongSum {
			sum = Sum([]byte("other"))
		}
		if p.truncate {
			body = body[:len(body)/2]
		}
		w.Header().Set(DigestHeader, echo)
		if !p.dropSum {
			w.Header().Set(SumHeader, sum)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
}

func stubPeer(t *testing.T, p *peerStub) string {
	t.Helper()
	srv := httptest.NewServer(p.handler())
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestFetchArtifactOK(t *testing.T) {
	art := []byte(`{"digest":"abc","artifact":true}`)
	peer := stubPeer(t, &peerStub{artifact: art, digest: "abc"})
	fc := &FetchClient{}
	got, err := fc.Artifact(context.Background(), peer, "abc")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(art) {
		t.Fatalf("fetched %q, want %q", got, art)
	}
}

func TestFetchArtifactMiss(t *testing.T) {
	peer := stubPeer(t, &peerStub{artifact: []byte("x"), digest: "abc"})
	fc := &FetchClient{}
	_, err := fc.Artifact(context.Background(), peer, "other")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFetchArtifactIntegrity(t *testing.T) {
	art := []byte(`{"digest":"abc"}`)
	cases := map[string]*peerStub{
		"wrong digest echo": {artifact: art, digest: "abc", wrongDigest: true},
		"wrong sum":         {artifact: art, digest: "abc", wrongSum: true},
		"truncated body":    {artifact: art, digest: "abc", truncate: true},
		"missing sum":       {artifact: art, digest: "abc", dropSum: true},
	}
	for name, stub := range cases {
		peer := stubPeer(t, stub)
		fc := &FetchClient{}
		if _, err := fc.Artifact(context.Background(), peer, "abc"); err == nil {
			t.Errorf("%s: fetch accepted corrupt response", name)
		} else if errors.Is(err, ErrNotFound) {
			t.Errorf("%s: corruption misreported as miss", name)
		}
	}
}

func TestFetchArtifactPeerDown(t *testing.T) {
	fc := &FetchClient{}
	_, err := fc.Artifact(context.Background(), "127.0.0.1:1", "abc")
	if err == nil {
		t.Fatal("fetch from dead peer succeeded")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatal("transport failure misreported as miss")
	}
}

func TestHealthz(t *testing.T) {
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.NotFound(w, r)
	}))
	t.Cleanup(ok.Close)
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(draining.Close)

	fc := &FetchClient{}
	if err := fc.Healthz(context.Background(), strings.TrimPrefix(ok.URL, "http://")); err != nil {
		t.Fatalf("healthy peer probe failed: %v", err)
	}
	if err := fc.Healthz(context.Background(), strings.TrimPrefix(draining.URL, "http://")); err == nil {
		t.Fatal("draining peer probe passed")
	}
	if err := fc.Healthz(context.Background(), "127.0.0.1:1"); err == nil {
		t.Fatal("dead peer probe passed")
	}
}

func TestBaseURL(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8347": "http://127.0.0.1:8347",
		"http://h:1":     "http://h:1",
		"https://h:1/":   "https://h:1",
		"h:1/":           "http://h:1",
	}
	for in, want := range cases {
		if got := BaseURL(in); got != want {
			t.Errorf("BaseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
