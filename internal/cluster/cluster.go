// Package cluster holds the deterministic primitives that turn N sdfd
// processes into one logical compiler: a versioned rendezvous-hash ring that
// assigns every content digest exactly one owning member, a capped
// exponential backoff with explicitly seeded jitter, a health monitor that
// gates ring membership on /healthz probes, and a peer artifact fetch
// client that re-verifies what it receives.
//
// The package lives inside the repository's deterministic lint set
// (bannedcall): it never reads the wall clock — all timing flows through the
// injected Clock — and all randomness (backoff jitter) comes from explicitly
// seeded generators, so routing decisions and retry schedules are pure
// functions of their inputs. internal/service injects the real clock and
// owns the HTTP routing policy built on these primitives; docs/SERVICE.md
// ("Cluster mode") documents the wire protocol.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"time"
)

// Clock abstracts time for the health monitor's probe cadence and for retry
// sleeps. internal/service injects the real clock; tests inject
// deterministic fakes. (The bannedcall analyzer keeps this package from
// calling time.Now itself.)
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// Wire headers of the internal peer artifact API
// (GET /v1/peer/artifact/{digest}).
const (
	// DigestHeader carries the content digest the response bytes are cached
	// under. The fetching side requires it to echo the digest it asked for.
	DigestHeader = "X-Sdfd-Digest"
	// SumHeader carries the hex SHA-256 of the exact response body, computed
	// by the serving peer. The fetching side recomputes it over the received
	// bytes, so truncation or corruption in transit cannot poison a cache.
	SumHeader = "X-Sdfd-Sum"
)

// Sum is the over-the-wire integrity checksum of a peer artifact response:
// hex SHA-256 over the exact bytes.
func Sum(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// BaseURL normalizes a member identity (host:port, as spelled in -peers)
// into an http base URL. A member that already carries a scheme is kept.
func BaseURL(member string) string {
	u := strings.TrimRight(member, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}
