package cluster

import (
	"context"
	"sync"
	"time"
)

// MonitorConfig configures a health Monitor.
type MonitorConfig struct {
	// Peers are the member identities to probe (typically every cluster
	// member except self).
	Peers []string
	// Clock paces the probe loops; required.
	Clock Clock
	// Probe checks one peer (normally a GET /healthz round trip). A nil
	// error marks the peer alive, any error marks it dead. Required.
	Probe func(ctx context.Context, peer string) error
	// Interval is the steady-state probe period while a peer is alive.
	// Defaults to 2s.
	Interval time.Duration
	// BackoffMin/BackoffMax bound the capped exponential re-probe schedule
	// while a peer is dead. Defaults follow NewBackoff.
	BackoffMin, BackoffMax time.Duration
	// Seed feeds the backoff jitter generators (peer index is mixed in so
	// loops don't probe in lockstep).
	Seed int64
	// OnChange, when set, is called on every alive<->dead transition and
	// once for each peer's initial verdict. Called from the probe
	// goroutines; must be safe for concurrent use.
	OnChange func(peer string, alive bool)
}

// Monitor tracks peer liveness by probing each peer on its own schedule:
// every Interval while alive, on a capped exponential backoff while dead.
// A single failed probe marks a peer dead and a single success resurrects
// it — with digest-addressed idempotent requests, flapping costs only a
// proxied or locally served request, so the monitor favors fast reaction
// over damping.
//
// Peers start in the dead state until their first successful probe; routing
// layers treat "no monitor verdict yet" as dead and fall back to local
// compilation, which is always correct, just colder.
type Monitor struct {
	cfg MonitorConfig

	mu    sync.Mutex
	alive map[string]bool
}

// NewMonitor builds a Monitor; call Run to start probing.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	m := &Monitor{cfg: cfg, alive: make(map[string]bool, len(cfg.Peers))}
	for _, p := range cfg.Peers {
		m.alive[p] = false
	}
	return m
}

// Run probes all peers until ctx is cancelled, then returns after every
// probe loop has exited. Each peer gets an immediate first probe so a
// freshly started cluster converges without waiting out an interval.
func (m *Monitor) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for i, p := range m.cfg.Peers {
		wg.Add(1)
		go m.probeLoop(ctx, &wg, p, int64(i))
	}
	wg.Wait()
}

func (m *Monitor) probeLoop(ctx context.Context, wg *sync.WaitGroup, peer string, idx int64) {
	defer wg.Done()
	bo := NewBackoff(m.cfg.BackoffMin, m.cfg.BackoffMax, m.cfg.Seed+idx)
	first := true
	for {
		alive := m.cfg.Probe(ctx, peer) == nil
		m.record(peer, alive, first)
		first = false

		var delay time.Duration
		if alive {
			bo.Reset()
			delay = m.cfg.Interval
		} else {
			delay = bo.Next()
		}
		select {
		case <-ctx.Done():
			return
		case <-m.cfg.Clock.After(delay):
		}
	}
}

func (m *Monitor) record(peer string, alive, first bool) {
	m.mu.Lock()
	changed := m.alive[peer] != alive
	m.alive[peer] = alive
	m.mu.Unlock()
	if (changed || first) && m.cfg.OnChange != nil {
		m.cfg.OnChange(peer, alive)
	}
}

// IsAlive reports the last probe verdict for peer. Unknown peers are dead.
func (m *Monitor) IsAlive(peer string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive[peer]
}

// AliveCount returns how many peers are currently alive.
func (m *Monitor) AliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, a := range m.alive {
		if a {
			n++
		}
	}
	return n
}

// SetAlive overrides a peer's verdict. It exists for routing tests that
// need a monitor in a known state without running probe loops.
func (m *Monitor) SetAlive(peer string, alive bool) {
	m.mu.Lock()
	m.alive[peer] = alive
	m.mu.Unlock()
}
