package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// RingVersion frames every rendezvous score. Bump it only with a migration
// plan: two daemons disagreeing on the version partition the keyspace, so
// the version is part of the sharding contract, like "sdfd/v1" is part of
// the artifact digest.
const RingVersion = "sdfring/v1"

// Ring is a rendezvous (highest-random-weight) hash ring over a static
// member set. Each key is owned by the member with the highest score
// SHA-256(RingVersion ‖ 0 ‖ member ‖ 0 ‖ key); because scores are computed
// per (member, key) pair independently, removing a member only moves the
// keys that member owned, and adding one only steals the keys it now wins —
// minimal movement holds by construction, and the property tests in
// ring_test.go pin it.
//
// A Ring is immutable after New; membership changes are expressed by
// building a new Ring (they are cheap: the ring holds only the sorted
// member list).
type Ring struct {
	members []string
}

// NewRing builds a ring over the given member identities (host:port
// strings). Members are deduplicated and sorted, so rings built from the
// same set in any order are identical. At least one member is required.
func NewRing(members []string) (*Ring, error) {
	seen := make(map[string]bool, len(members))
	var ms []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(ms)
	return &Ring{members: ms}, nil
}

// Members returns the sorted member list. The caller must not mutate it.
func (r *Ring) Members() []string { return r.members }

// score is the rendezvous weight of member for key: the first 8 bytes of
// SHA-256(RingVersion ‖ 0 ‖ member ‖ 0 ‖ key), big-endian. NUL separators
// keep ("ab","c") and ("a","bc") from colliding.
func score(member, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(RingVersion))
	h.Write([]byte{0})
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// Owner returns the member that owns key: the highest rendezvous score,
// ties broken by member name (deterministic because members are unique).
func (r *Ring) Owner(key string) string {
	best := r.members[0]
	bestScore := score(best, key)
	for _, m := range r.members[1:] {
		if s := score(m, key); s > bestScore || (s == bestScore && m > best) {
			best, bestScore = m, s
		}
	}
	return best
}

// Ranked returns all members ordered by descending preference for key. The
// first element is Owner(key); subsequent elements are the successive
// fallbacks a router should try when earlier ones are unhealthy, and every
// router ranking the same key agrees on the whole order.
func (r *Ring) Ranked(key string) []string {
	type ms struct {
		m string
		s uint64
	}
	scored := make([]ms, len(r.members))
	for i, m := range r.members {
		scored[i] = ms{m, score(m, key)}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].s != scored[j].s {
			return scored[i].s > scored[j].s
		}
		return scored[i].m > scored[j].m
	})
	out := make([]string, len(scored))
	for i, e := range scored {
		out[i] = e.m
	}
	return out
}

// OwnedFraction estimates the fraction of the keyspace owned by member by
// probing `probes` deterministic synthetic keys ("probe-0", "probe-1", …).
// It backs the sdfd_ring_owned_fraction gauge; with healthy peers it should
// hover near 1/len(members).
func (r *Ring) OwnedFraction(member string, probes int) float64 {
	if probes <= 0 {
		probes = 256
	}
	owned := 0
	for i := 0; i < probes; i++ {
		if r.Owner(fmt.Sprintf("probe-%d", i)) == member {
			owned++
		}
	}
	return float64(owned) / float64(probes)
}
