package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// ErrNotFound reports that the probed peer does not hold the artifact (its
// cache/store missed). It is the one fetch failure that must not be
// retried against the same peer: a miss is an answer, not an outage.
var ErrNotFound = errors.New("cluster: peer does not have artifact")

// FetchClient retrieves cached artifacts from peers over the internal
// GET /v1/peer/artifact/{digest} API and re-verifies integrity before
// handing bytes to the caller.
type FetchClient struct {
	// HTTP is the client used for peer calls; it should carry a timeout.
	HTTP *http.Client
}

// Artifact fetches digest from peer (a host:port member identity) and
// verifies the response: the peer must echo the requested digest in
// X-Sdfd-Digest, and the body must hash to the X-Sdfd-Sum checksum the
// peer computed when serving. ErrNotFound means the peer missed; other
// errors are transport or integrity failures the caller may retry
// elsewhere.
func (c *FetchClient) Artifact(ctx context.Context, peer, digest string) ([]byte, error) {
	url := BaseURL(peer) + "/v1/peer/artifact/" + digest
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: peer %s returned %d for %s", peer, resp.StatusCode, digest)
	}
	if got := resp.Header.Get(DigestHeader); got != digest {
		return nil, fmt.Errorf("cluster: peer %s served digest %q, want %q", peer, got, digest)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	want := resp.Header.Get(SumHeader)
	if want == "" {
		return nil, fmt.Errorf("cluster: peer %s response missing %s", peer, SumHeader)
	}
	if got := Sum(body); got != want {
		return nil, fmt.Errorf("cluster: peer %s artifact %s corrupt in transit: sum %s, want %s", peer, digest, got, want)
	}
	return body, nil
}

// Healthz probes peer's /healthz endpoint; nil means healthy. It is the
// default Monitor probe.
func (c *FetchClient) Healthz(ctx context.Context, peer string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, BaseURL(peer)+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s healthz returned %d", peer, resp.StatusCode)
	}
	return nil
}

func (c *FetchClient) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}
