package cluster

import (
	"testing"
	"time"
)

// TestBackoffBounds: attempt n's wait lies in [base/2, base] where base is
// the capped exponential min<<n, for the whole schedule.
func TestBackoffBounds(t *testing.T) {
	min, max := 50*time.Millisecond, 2*time.Second
	b := NewBackoff(min, max, 7)
	base := min
	for i := 0; i < 20; i++ {
		d := b.Next()
		if d < base/2 || d > base {
			t.Fatalf("attempt %d: wait %v outside [%v, %v]", i, d, base/2, base)
		}
		if base < max {
			base *= 2
			if base > max {
				base = max
			}
		}
	}
}

// TestBackoffDeterministic: same seed, same schedule; different seed,
// different jitter.
func TestBackoffDeterministic(t *testing.T) {
	a, b := NewBackoff(0, 0, 42), NewBackoff(0, 0, 42)
	c := NewBackoff(0, 0, 43)
	same, diff := true, false
	for i := 0; i < 10; i++ {
		da, db, dc := a.Next(), b.Next(), c.Next()
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different schedules")
	}
	if !diff {
		t.Error("different seeds produced identical jitter (suspicious)")
	}
}

// TestBackoffCaps: the schedule saturates at max and never overflows even
// after many attempts.
func TestBackoffCaps(t *testing.T) {
	max := 200 * time.Millisecond
	b := NewBackoff(50*time.Millisecond, max, 1)
	var last time.Duration
	for i := 0; i < 100; i++ {
		last = b.Next()
		if last <= 0 || last > max {
			t.Fatalf("attempt %d: wait %v escaped (0, %v]", i, last, max)
		}
	}
	if last < max/2 {
		t.Fatalf("saturated wait %v below cap/2 %v", last, max/2)
	}
}

// TestBackoffReset rewinds to the Min-based step.
func TestBackoffReset(t *testing.T) {
	min := 50 * time.Millisecond
	b := NewBackoff(min, 2*time.Second, 9)
	for i := 0; i < 5; i++ {
		b.Next()
	}
	b.Reset()
	if d := b.Next(); d < min/2 || d > min {
		t.Fatalf("post-reset wait %v outside [%v, %v]", d, min/2, min)
	}
}

// TestBackoffDefaults: non-positive bounds get sane defaults, inverted
// bounds are repaired.
func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if b.min != 50*time.Millisecond || b.max != 2*time.Second {
		t.Fatalf("defaults = (%v, %v)", b.min, b.max)
	}
	b = NewBackoff(time.Second, time.Millisecond, 1)
	if b.max != time.Second {
		t.Fatalf("inverted bounds: max=%v, want raised to min", b.max)
	}
}
