package sim

import (
	"fmt"
	"sync"

	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sdf"
)

// RunPhased executes a phased partitioned schedule on P goroutines against
// the segmented allocation and verifies the same safety properties as Run:
// every consumed token carries exactly the value produced for it and every
// edge returns to its initial token count at each period boundary. Workers
// synchronize on a cyclic barrier after every phase, so all cross-worker
// buffer traffic is write-then-barrier-then-read; the verification therefore
// also catches partitioning bugs (a same-phase cross-worker edge, a shared
// buffer packed over a still-live neighbour) as value corruption or count
// drift. The run is deterministic in its verdict: a worker that fails
// records its own error, keeps joining every barrier so the others drain
// normally, and the lowest-indexed worker's error is reported.
func RunPhased(g *sdf.Graph, q sdf.Repetitions, part *partition.Partitioned,
	seg *partition.SegAlloc, periods int) error {
	if len(q) != g.NumActors() {
		return fmt.Errorf("sim: phased: %d repetitions for %d actors", len(q), g.NumActors())
	}
	if len(seg.Offsets) != g.NumEdges() || len(seg.Sizes) != g.NumEdges() {
		return fmt.Errorf("sim: phased: allocation covers %d edges, graph has %d",
			len(seg.Offsets), g.NumEdges())
	}
	st := &phasedState{
		g:     g,
		mem:   make([]int64, seg.Total),
		edges: make([]edgeState, g.NumEdges()),
	}
	for _, e := range g.Edges() {
		es := &st.edges[e.ID]
		es.offset = seg.Offsets[e.ID]
		es.size = seg.Sizes[e.ID]
		es.words = e.Words
		if es.words < 1 {
			es.words = 1
		}
		if es.offset < 0 || es.offset+es.size > st.int64Len() {
			return fmt.Errorf("sim: phased: edge %d buffer [%d,%d) outside image of %d cells",
				e.ID, es.offset, es.offset+es.size, len(st.mem))
		}
		es.count = e.Delay
		for i := int64(0); i < e.Delay; i++ {
			es.write(st.mem, tokenValue(e.ID, es.writes))
		}
	}

	bar := par.NewBarrier(part.P)
	errs := make([]error, part.P)
	for p := 0; p < periods; p++ {
		var wg sync.WaitGroup
		for w := 0; w < part.P; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ph := 0; ph < part.NumPhases; ph++ {
					// A failed worker stops firing (its local state is
					// suspect) but keeps arriving at every barrier so the
					// other workers complete deterministically.
					if errs[w] == nil {
						errs[w] = st.runPhase(part, p, ph, w)
					}
					bar.Await()
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		// Period boundary invariants (workers are joined; no races).
		for _, e := range g.Edges() {
			es := &st.edges[e.ID]
			if es.count != e.Delay {
				return fmt.Errorf("sim: phased period %d: edge %d ends with %d tokens, want %d",
					p, e.ID, es.count, e.Delay)
			}
		}
	}
	return nil
}

// phasedState is the shared memory image of a phased run. Unlike the
// sequential state there is no cell-ownership ledger: segments make private
// traffic disjoint by construction and the unique token values turn any
// cross-buffer clobbering into a read mismatch.
type phasedState struct {
	g     *sdf.Graph
	mem   []int64
	edges []edgeState
}

func (st *phasedState) int64Len() int64 { return int64(len(st.mem)) }

// runPhase fires worker w's blocks for one phase.
func (st *phasedState) runPhase(part *partition.Partitioned, period, ph, w int) error {
	for _, blk := range part.Phases[ph].Workers[w] {
		for k := int64(0); k < blk.Count; k++ {
			if err := st.fire(blk.Actor); err != nil {
				return fmt.Errorf("sim: phased period %d phase %d worker %d: %w", period, ph, w, err)
			}
		}
	}
	return nil
}

// fire is the phased counterpart of state.fire: consume all inputs, produce
// on all outputs, without the ownership ledger. Each edge's bookkeeping is
// touched by at most one goroutine per phase (same-phase edges are
// intra-worker by construction) and cross-phase access is ordered by the
// barrier, so the plain field updates are race-free.
func (st *phasedState) fire(actor sdf.ActorID) error {
	g := st.g
	for _, eid := range g.In(actor) {
		e := g.Edge(eid)
		es := &st.edges[eid]
		if es.count < e.Cons {
			return fmt.Errorf("actor %s consumes %d from edge %d holding %d",
				g.Actor(actor).Name, e.Cons, eid, es.count)
		}
		for i := int64(0); i < e.Cons; i++ {
			if _, err := es.read(st.mem); err != nil {
				return fmt.Errorf("edge %d token %d corrupted: %w", eid, es.reads, err)
			}
		}
		es.count -= e.Cons
	}
	for _, eid := range g.Out(actor) {
		e := g.Edge(eid)
		es := &st.edges[eid]
		for i := int64(0); i < e.Prod; i++ {
			es.write(st.mem, tokenValue(eid, es.writes))
		}
		es.count += e.Prod
	}
	return nil
}
