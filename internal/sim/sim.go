// Package sim executes a looped SDF schedule token-by-token against a
// concrete shared-memory allocation and verifies that the combination is
// safe: no firing ever writes into cells owned by another live buffer, every
// consumed token carries exactly the value that was produced, and every edge
// returns to its initial state at the period boundary.
//
// It is the end-to-end correctness oracle for the whole compiler pipeline:
// scheduling, lifetime extraction and storage allocation must all be right
// for a multi-period run to pass.
package sim

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/lifetime"
	"repro/internal/sched"
	"repro/internal/sdf"
)

// Run executes the schedule for the given number of periods in a shared
// memory image laid out by the allocation. intervals must be indexed by edge
// ID (as produced by schedtree.Lifetimes) and each must have a placement in
// the allocation. It returns the first safety violation found, or nil.
func Run(s *sched.Schedule, q sdf.Repetitions, intervals []*lifetime.Interval,
	a *alloc.Allocation, periods int) error {
	g := s.Graph
	if len(intervals) != g.NumEdges() {
		return fmt.Errorf("sim: %d intervals for %d edges", len(intervals), g.NumEdges())
	}
	st := &state{
		g:     g,
		mem:   make([]int64, a.Total),
		owner: make([]int, a.Total),
		edges: make([]edgeState, g.NumEdges()),
	}
	for i := range st.owner {
		st.owner[i] = -1
	}
	for _, e := range g.Edges() {
		iv := intervals[e.ID]
		off, ok := a.OffsetOf(iv)
		if !ok {
			return fmt.Errorf("sim: edge %d interval %s not in allocation", e.ID, iv.Name)
		}
		es := &st.edges[e.ID]
		es.offset = off
		es.size = iv.Size
		es.words = e.Words
		if es.words < 1 {
			es.words = 1
		}
		es.count = e.Delay
		if e.Delay > 0 {
			if err := st.claim(int(e.ID)); err != nil {
				return err
			}
			es.live = true
			for i := int64(0); i < e.Delay; i++ {
				es.write(st.mem, tokenValue(e.ID, es.writes))
			}
		}
	}
	for p := 0; p < periods; p++ {
		var failure error
		ok := s.ForEachFiring(func(actor sdf.ActorID) bool {
			if err := st.fire(actor); err != nil {
				failure = err
				return false
			}
			return true
		})
		if !ok {
			return fmt.Errorf("sim: period %d: %w", p, failure)
		}
		// Period boundary invariants.
		for _, e := range g.Edges() {
			es := &st.edges[e.ID]
			if es.count != e.Delay {
				return fmt.Errorf("sim: period %d: edge %d ends with %d tokens, want %d",
					p, e.ID, es.count, e.Delay)
			}
		}
	}
	return nil
}

type state struct {
	g     *sdf.Graph
	mem   []int64
	owner []int // edge ID owning each cell, -1 when free
	edges []edgeState
}

type edgeState struct {
	offset, size  int64
	words         int64 // memory words per token
	count         int64
	writes, reads int64 // absolute token counters
	fifo          []int64
	live          bool
}

// write stores one token (words cells, each tagged with the token value plus
// its word index) at the tail of the circular buffer.
func (es *edgeState) write(mem []int64, v int64) {
	base := es.offset + (es.writes*es.words)%es.size
	for w := int64(0); w < es.words; w++ {
		mem[base+w] = v + w
	}
	es.fifo = append(es.fifo, v)
	es.writes++
}

// read pops one token from the head, verifying every word.
func (es *edgeState) read(mem []int64) (int64, error) {
	want := es.fifo[0]
	es.fifo = es.fifo[1:]
	base := es.offset + (es.reads*es.words)%es.size
	for w := int64(0); w < es.words; w++ {
		if got := mem[base+w]; got != want+w {
			return base + w, fmt.Errorf("cell %d holds %d, want %d", base+w, got, want+w)
		}
	}
	es.reads++
	return 0, nil
}

// tokenValue derives a unique, deterministic value for the n-th token ever
// produced on an edge, so that any cross-buffer clobbering is detected on
// consumption. Tokens are spaced 1024 apart so the per-word offsets of a
// vector token (value, value+1, ...) never collide with a neighbour.
func tokenValue(e sdf.EdgeID, n int64) int64 {
	return int64(e)*1_000_000_007 + (n+1)*1024
}

func (st *state) claim(eid int) error {
	es := &st.edges[eid]
	for c := es.offset; c < es.offset+es.size; c++ {
		if st.owner[c] != -1 && st.owner[c] != eid {
			return fmt.Errorf("sim: buffer %d becoming live would clobber cell %d owned by buffer %d",
				eid, c, st.owner[c])
		}
	}
	for c := es.offset; c < es.offset+es.size; c++ {
		st.owner[c] = eid
	}
	return nil
}

func (st *state) release(eid int) {
	es := &st.edges[eid]
	for c := es.offset; c < es.offset+es.size; c++ {
		if st.owner[c] == eid {
			st.owner[c] = -1
		}
	}
}

// fire executes one firing of an actor: consume from all inputs, then
// produce on all outputs.
func (st *state) fire(actor sdf.ActorID) error {
	g := st.g
	for _, eid := range g.In(actor) {
		e := g.Edge(eid)
		es := &st.edges[eid]
		if es.count < e.Cons {
			return fmt.Errorf("sim: actor %s consumes %d from edge %d holding %d",
				g.Actor(actor).Name, e.Cons, eid, es.count)
		}
		for i := int64(0); i < e.Cons; i++ {
			if _, err := es.read(st.mem); err != nil {
				return fmt.Errorf("sim: edge %d token %d corrupted: %w", eid, es.reads, err)
			}
		}
		es.count -= e.Cons
		if es.count == 0 && es.live {
			st.release(int(eid))
			es.live = false
		}
	}
	for _, eid := range g.Out(actor) {
		e := g.Edge(eid)
		es := &st.edges[eid]
		if !es.live {
			if err := st.claim(int(eid)); err != nil {
				return fmt.Errorf("sim: actor %s producing on edge %d: %w",
					g.Actor(actor).Name, eid, err)
			}
			es.live = true
		}
		for i := int64(0); i < e.Prod; i++ {
			es.write(st.mem, tokenValue(eid, es.writes))
		}
		es.count += e.Prod
	}
	return nil
}
