package sim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/lifetime"
	"repro/internal/randsdf"
	"repro/internal/sched"
	"repro/internal/schedtree"
	"repro/internal/sdf"
)

// pipeline compiles a schedule down to lifetimes + allocation for testing.
func pipeline(t *testing.T, g *sdf.Graph, text string, strat alloc.Strategy) (
	*sched.Schedule, sdf.Repetitions, []*lifetime.Interval, *alloc.Allocation) {
	t.Helper()
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	s := sched.MustParse(g, text)
	if err := s.Validate(q); err != nil {
		t.Fatalf("schedule %q: %v", text, err)
	}
	tr, err := schedtree.FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := tr.Lifetimes(q)
	if err != nil {
		t.Fatal(err)
	}
	a := alloc.Allocate(ivs, strat)
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	return s, q, ivs, a
}

func TestRunChain(t *testing.T) {
	g := sdf.New("chain")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 0)
	g.AddEdge(b, c, 1, 3, 0)
	for _, text := range []string{"(3A)(6B)(2C)", "(3A(2B))(2C)"} {
		s, q, ivs, al := pipeline(t, g, text, alloc.FirstFitDuration)
		if err := Run(s, q, ivs, al, 3); err != nil {
			t.Errorf("%s: %v", text, err)
		}
	}
}

func TestRunWithDelays(t *testing.T) {
	g := sdf.New("delay")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 2, 1, 1)
	s, q, ivs, al := pipeline(t, g, "(A(2B))", alloc.FirstFitStart)
	if err := Run(s, q, ivs, al, 4); err != nil {
		t.Error(err)
	}
}

func TestRunDetectsClobber(t *testing.T) {
	// Force two time-overlapping buffers onto the same cells: A->B and A->C
	// both live while A fires.
	g := sdf.New("bad")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(a, c, 1, 1, 0)
	q, _ := g.Repetitions()
	s := sched.MustParse(g, "ABC")
	tr, err := schedtree.FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := tr.Lifetimes(q)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately broken allocation: both buffers at offset 0.
	bad := &alloc.Allocation{
		Placements: []alloc.Placement{
			{Interval: ivs[0], Offset: 0},
			{Interval: ivs[1], Offset: 0},
		},
		Total: 1,
	}
	err = Run(s, q, ivs, bad, 1)
	if err == nil {
		t.Fatal("clobbering allocation passed the simulator")
	}
	if !strings.Contains(err.Error(), "clobber") && !strings.Contains(err.Error(), "corrupted") {
		t.Errorf("unexpected error kind: %v", err)
	}
}

func TestRunDetectsBadSchedule(t *testing.T) {
	g := sdf.New("under")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	q := sdf.Repetitions{1, 1}
	// B first: underflow.
	s := sched.MustParse(g, "BA")
	iv := &lifetime.Interval{Name: "x", Size: 1, Start: 0, Dur: 2}
	al := &alloc.Allocation{Placements: []alloc.Placement{{Interval: iv, Offset: 0}}, Total: 1}
	if err := Run(s, q, []*lifetime.Interval{iv}, al, 1); err == nil {
		t.Error("underflowing schedule passed")
	}
}

func TestRunRandomPipelines(t *testing.T) {
	// End-to-end property: every compiled random graph must execute cleanly
	// for several periods under both allocators. Uses flat SAS from a
	// deterministic topological sort.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		g := randsdf.Graph(rng, randsdf.Config{Actors: 4 + rng.Intn(10)})
		q, err := g.Repetitions()
		if err != nil {
			t.Fatal(err)
		}
		order, err := g.TopologicalSort(q)
		if err != nil {
			t.Fatal(err)
		}
		s := sched.FlatSAS(g, q, order)
		tr, err := schedtree.FromSchedule(s)
		if err != nil {
			t.Fatal(err)
		}
		ivs, err := tr.Lifetimes(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart} {
			al := alloc.Allocate(ivs, strat)
			if err := al.Verify(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := Run(s, q, ivs, al, 3); err != nil {
				t.Fatalf("trial %d (%v): %v", trial, strat, err)
			}
		}
	}
}

func TestTokenValueUnique(t *testing.T) {
	seen := map[int64]bool{}
	for e := sdf.EdgeID(0); e < 10; e++ {
		for n := int64(0); n < 100; n++ {
			v := tokenValue(e, n)
			if seen[v] {
				t.Fatalf("duplicate token value %d", v)
			}
			seen[v] = true
		}
	}
}
