package dynsched_test

import (
	"fmt"
	"log"

	"repro/internal/dynsched"
	"repro/internal/sdf"
)

// ExampleSchedule shows the demand-driven scheduler reaching the closed-form
// per-edge minimum a + b - c on a rate-changing edge, below the BMLB of any
// single appearance schedule.
func ExampleSchedule() {
	g := sdf.New("pair")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 2, 3, 0)
	q, err := g.Repetitions()
	if err != nil {
		log.Fatal(err)
	}
	res, err := dynsched.Schedule(g, q)
	if err != nil {
		log.Fatal(err)
	}
	bmlb, err := g.BMLB()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("greedy buffer:", res.BufMem)
	fmt.Println("best-SAS bound (BMLB):", bmlb)
	fmt.Println("schedule:", res.AsSchedule(g))
	// Output:
	// greedy buffer: 4
	// best-SAS bound (BMLB): 6
	// schedule: (2A)BAB
}
