package dynsched

import (
	"testing"

	"repro/internal/sdf"
	"repro/internal/systems"
)

// TestCDDATGreedyMatchesBound: the CD-DAT chain is chain-structured, so the
// demand-driven scheduler must hit the all-schedules minimum exactly.
func TestCDDATGreedyMatchesBound(t *testing.T) {
	g := systems.CDDAT()
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if bound := mustBound(t, g.MinBufferAllSchedules); res.BufMem != bound {
		t.Errorf("greedy %d, want bound %d", res.BufMem, bound)
	}
	if res.Length != q.TotalFirings() {
		t.Errorf("length %d, want %d", res.Length, q.TotalFirings())
	}
}

// TestSatrecGreedyMatchesBound: satrec's diamond merges are handled too.
func TestSatrecGreedyMatchesBound(t *testing.T) {
	g := systems.SatelliteReceiver()
	q, _ := g.Repetitions()
	res, err := Schedule(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if bound := mustBound(t, g.MinBufferAllSchedules); res.BufMem != bound {
		t.Errorf("greedy %d, want bound %d (demand-driven should be optimal here)",
			res.BufMem, bound)
	}
}

// TestAsScheduleRunLength: alternating firings compress into maximal runs.
func TestAsScheduleRunLength(t *testing.T) {
	g := sdf.New("rle")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 2, 0)
	q, _ := g.Repetitions() // q = (2, 1)
	res, err := Schedule(g, q)
	if err != nil {
		t.Fatal(err)
	}
	s := res.AsSchedule(g)
	// Demand: B needs 2 tokens -> A A B. RLE: (2A) B = 2 blocks.
	if len(s.Body) != 2 {
		t.Errorf("RLE blocks = %d (%s), want 2", len(s.Body), s)
	}
	if s.Body[0].Count != 2 || s.Body[0].Actor != a {
		t.Errorf("first block = %+v, want (2A)", s.Body[0])
	}
}

// TestUpsamplerDemand: a 1->many expander must only fire when demanded.
func TestUpsamplerDemand(t *testing.T) {
	g := sdf.New("up")
	src := g.AddActor("src")
	up := g.AddActor("up")
	snk := g.AddActor("snk")
	g.AddEdge(src, up, 1, 1, 0)
	g.AddEdge(up, snk, 4, 1, 0) // q = (1, 1, 4)
	q, _ := g.Repetitions()
	res, err := Schedule(g, q)
	if err != nil {
		t.Fatal(err)
	}
	// The 4 tokens appear at once (one up firing); max on up->snk is 4, the
	// minimum possible: a + b - c = 4 + 1 - 1 = 4.
	if res.MaxTokens[1] != 4 {
		t.Errorf("max on expander edge = %d, want 4", res.MaxTokens[1])
	}
}
