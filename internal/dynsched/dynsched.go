// Package dynsched implements the greedy, data-driven scheduler discussed in
// Sec. 11.1.3 of the paper: a scheduler that fires a sink actor in preference
// to a source actor whenever both are fireable, minimizing instantaneous
// buffering at the cost of a (potentially very long) non-single-appearance
// schedule. For chain-structured graphs this achieves the per-edge minimum
// over all valid schedules (a + b - c + d mod c); for general graphs it still
// undercuts the best SAS.
//
// The package exists to reproduce the paper's static-vs-dynamic comparison:
// dynamic scheduling reaches lower buffer totals but produces schedules whose
// length is the total firing count, with commensurate runtime dispatch cost.
package dynsched

import (
	"errors"
	"fmt"

	"repro/internal/sched"
	"repro/internal/sdf"
)

// Result describes one data-driven schedule.
type Result struct {
	// Firings is the complete firing sequence of one period.
	Firings []sdf.ActorID
	// MaxTokens per edge over the period (including initial delays).
	MaxTokens []int64
	// BufMem is the non-shared buffer total: sum of MaxTokens.
	BufMem int64
	// Length is len(Firings) — the code/dispatch cost a static inline
	// implementation of this schedule would pay.
	Length int64
}

// ErrDeadlock reports that the graph could not complete a period.
var ErrDeadlock = errors.New("dynsched: deadlock (inconsistent or cyclic graph)")

// Schedule runs the demand-driven scheduler for one period: it repeatedly
// selects the deepest actor that still owes firings and pulls exactly the
// data that firing needs through its predecessors, so a producer fires only
// when a consumer demands tokens — the strongest form of "fire the sink in
// preference to the source".
func Schedule(g *sdf.Graph, q sdf.Repetitions) (*Result, error) {
	n := g.NumActors()
	st := &scheduler{
		g:         g,
		remaining: make([]int64, n),
		tokens:    make([]int64, g.NumEdges()),
		maxTok:    make([]int64, g.NumEdges()),
		visiting:  make([]bool, n),
	}
	var totalLeft int64
	for a := 0; a < n; a++ {
		st.remaining[a] = q[a]
		totalLeft += q[a]
	}
	for _, e := range g.Edges() {
		st.tokens[e.ID] = e.Delay
		st.maxTok[e.ID] = e.Delay
	}
	depth := depths(g, q)
	// Tie-breaker for equal depths (e.g. when delays remove precedence):
	// prefer net consumers, so the sink side of a delay-saturated edge is
	// demanded first.
	delta := make([]int64, n)
	for _, e := range g.Edges() {
		delta[e.Src] += e.Prod
		delta[e.Dst] -= e.Cons
	}
	for totalLeft > 0 {
		target := sdf.ActorID(-1)
		for a := 0; a < n; a++ {
			id := sdf.ActorID(a)
			if st.remaining[id] == 0 {
				continue
			}
			if target < 0 || depth[id] > depth[target] ||
				(depth[id] == depth[target] && delta[id] < delta[target]) {
				target = id
			}
		}
		fired, err := st.demandFire(target)
		if err != nil {
			return nil, err
		}
		totalLeft -= fired
	}
	res := &Result{Firings: st.firings, MaxTokens: st.maxTok}
	for _, m := range st.maxTok {
		res.BufMem += m
	}
	res.Length = int64(len(res.Firings))
	return res, nil
}

type scheduler struct {
	g         *sdf.Graph
	remaining []int64
	tokens    []int64
	maxTok    []int64
	visiting  []bool
	firings   []sdf.ActorID
}

// demandFire executes one firing of a, recursively firing predecessors just
// enough to satisfy a's input demands. It returns the number of firings it
// performed (including the recursive ones).
func (st *scheduler) demandFire(a sdf.ActorID) (int64, error) {
	if st.visiting[a] {
		return 0, fmt.Errorf("%w: demand cycle through %s without sufficient delays",
			ErrDeadlock, st.g.Actor(a).Name)
	}
	if st.remaining[a] == 0 {
		return 0, fmt.Errorf("%w: actor %s demanded beyond its repetition count",
			ErrDeadlock, st.g.Actor(a).Name)
	}
	st.visiting[a] = true
	defer func() { st.visiting[a] = false }()
	var fired int64
	for _, eid := range st.g.In(a) {
		e := st.g.Edge(eid)
		for st.tokens[eid] < e.Cons {
			nf, err := st.demandFire(e.Src)
			if err != nil {
				return fired, err
			}
			fired += nf
		}
	}
	for _, eid := range st.g.In(a) {
		st.tokens[eid] -= st.g.Edge(eid).Cons
	}
	for _, eid := range st.g.Out(a) {
		st.tokens[eid] += st.g.Edge(eid).Prod
		if st.tokens[eid] > st.maxTok[eid] {
			st.maxTok[eid] = st.tokens[eid]
		}
	}
	st.remaining[a]--
	st.firings = append(st.firings, a)
	return fired + 1, nil
}

// depths assigns each actor its longest-path distance from any source over
// precedence edges, so that consumers rank above producers.
func depths(g *sdf.Graph, q sdf.Repetitions) []int64 {
	n := g.NumActors()
	d := make([]int64, n)
	order, err := g.TopologicalSort(q)
	if err != nil {
		// Cyclic precedence: fall back to zero depths; the greedy loop will
		// still make progress if delays permit.
		return d
	}
	for _, a := range order {
		for _, eid := range g.Out(a) {
			e := g.Edge(eid)
			if !sdf.PrecedenceEdge(g, q, eid) {
				continue
			}
			if d[a]+1 > d[e.Dst] {
				d[e.Dst] = d[a] + 1
			}
		}
	}
	return d
}

// AsSchedule converts the firing sequence into a (non-single-appearance)
// looped schedule with run-length compression of immediate repetitions,
// suitable for simulation with the sched package.
func (r *Result) AsSchedule(g *sdf.Graph) *sched.Schedule {
	var body []*sched.Node
	i := 0
	for i < len(r.Firings) {
		j := i
		for j < len(r.Firings) && r.Firings[j] == r.Firings[i] {
			j++
		}
		body = append(body, sched.Leaf(int64(j-i), r.Firings[i]))
		i = j
	}
	return &sched.Schedule{Graph: g, Body: body}
}
