package dynsched

import (
	"math/rand"
	"testing"

	"repro/internal/randsdf"
	"repro/internal/sdf"
)

func TestChainReachesAllSchedulesBound(t *testing.T) {
	// For a chain-structured graph the greedy data-driven scheduler attains
	// the per-edge minimum over all valid schedules: a + b - c + d mod c.
	g := sdf.New("chain")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 3, 0)
	g.AddEdge(b, c, 3, 2, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustBound(t, g.MinBufferAllSchedules); res.BufMem != want {
		t.Errorf("greedy bufmem = %d, want all-schedules minimum %d", res.BufMem, want)
	}
	// The bound is strictly below the BMLB (best SAS) here.
	if bmlb := mustBound(t, g.BMLB); res.BufMem >= bmlb {
		t.Errorf("greedy %d not below BMLB %d", res.BufMem, bmlb)
	}
}

// mustBound unwraps a (bound, error) pair from BMLB/MinBufferAllSchedules,
// failing the test on error.
func mustBound(t *testing.T, f func() (int64, error)) int64 {
	t.Helper()
	v, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestScheduleIsValidPeriod(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		g := randsdf.Graph(rng, randsdf.Config{Actors: 3 + rng.Intn(12)})
		q, err := g.Repetitions()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(g, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Exactly q firings per actor.
		count := make([]int64, g.NumActors())
		for _, a := range res.Firings {
			count[a]++
		}
		for a, c := range count {
			if c != q[a] {
				t.Fatalf("trial %d: actor %d fired %d times, want %d", trial, a, c, q[a])
			}
		}
		// The run-length compressed schedule validates and has the same
		// buffer profile.
		s := res.AsSchedule(g)
		if err := s.Validate(q); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bm, err := s.BufMem()
		if err != nil {
			t.Fatal(err)
		}
		if bm != res.BufMem {
			t.Errorf("trial %d: schedule bufmem %d != greedy %d", trial, bm, res.BufMem)
		}
	}
}

func TestGreedyNeverWorseThanAllSchedulesBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		g := randsdf.Graph(rng, randsdf.Config{Actors: 3 + rng.Intn(10)})
		q, _ := g.Repetitions()
		res, err := Schedule(g, q)
		if err != nil {
			t.Fatal(err)
		}
		if bound := mustBound(t, g.MinBufferAllSchedules); res.BufMem < bound {
			t.Errorf("trial %d: greedy %d below the theoretical minimum %d",
				trial, res.BufMem, bound)
		}
	}
}

func TestDelayOnlyCycle(t *testing.T) {
	g := sdf.New("cyc")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, 1)
	q, _ := g.Repetitions()
	res, err := Schedule(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Firings) != 2 {
		t.Errorf("firings = %v", res.Firings)
	}
}

func TestDeadlockDetected(t *testing.T) {
	g := sdf.New("dead")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, 0) // no initial tokens: true deadlock
	q := sdf.Repetitions{1, 1}
	if _, err := Schedule(g, q); err == nil {
		t.Error("deadlocked graph scheduled")
	}
}

func TestScheduleLengthIsTotalFirings(t *testing.T) {
	g := sdf.New("len")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 4, 0)
	q, _ := g.Repetitions()
	res, err := Schedule(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != q.TotalFirings() {
		t.Errorf("length %d != total firings %d", res.Length, q.TotalFirings())
	}
}

func TestSinksPreferred(t *testing.T) {
	// A -> B with enough delay that both are always fireable: B (the sink)
	// must fire first whenever it can, keeping the buffer at its floor.
	g := sdf.New("pref")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 3)
	q := sdf.Repetitions{3, 3}
	res, err := Schedule(g, q)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy should never let the buffer grow beyond its initial 3.
	if res.MaxTokens[0] != 3 {
		t.Errorf("max tokens = %d, want 3 (sink-first policy)", res.MaxTokens[0])
	}
}
