package sched

import (
	"fmt"
	"strconv"

	"repro/internal/sdf"
)

// Parse reads a looped schedule in the paper's notation, e.g.
//
//	(3A(2B))(2C)
//	(24(11(4A)B)CGHI(11(4D)E)FKLM10(NSJTUP))(QRV240W)
//
// Actor names start with a letter and may contain letters, digits and
// underscores; a number binds to the single following name or group as its
// loop count. Whitespace is ignored.
func Parse(g *sdf.Graph, text string) (*Schedule, error) {
	p := &parser{g: g, in: text}
	body, err := p.parseTerms(false)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("sched: trailing input at offset %d in %q", p.pos, text)
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("sched: empty schedule")
	}
	return &Schedule{Graph: g, Body: body}, nil
}

// MustParse is Parse panicking on error, for tests and static tables.
func MustParse(g *sdf.Graph, text string) *Schedule {
	s, err := Parse(g, text)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	g   *sdf.Graph
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) parseTerms(inParen bool) ([]*Node, error) {
	var terms []*Node
	for {
		p.skipSpace()
		if p.pos >= len(p.in) {
			if inParen {
				return nil, fmt.Errorf("sched: unterminated loop in %q", p.in)
			}
			return terms, nil
		}
		if p.in[p.pos] == ')' {
			if !inParen {
				return nil, fmt.Errorf("sched: unbalanced ')' at offset %d in %q", p.pos, p.in)
			}
			return terms, nil
		}
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
}

func (p *parser) parseTerm() (*Node, error) {
	p.skipSpace()
	c := p.in[p.pos]
	switch {
	case c >= '0' && c <= '9':
		count, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.in) {
			return nil, fmt.Errorf("sched: dangling count %d at end of %q", count, p.in)
		}
		inner, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return scaled(inner, count), nil
	case c == '(':
		p.pos++
		p.skipSpace()
		var count int64 = 1
		if p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
			n, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			count = n
		}
		body, err := p.parseTerms(true)
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.in) || p.in[p.pos] != ')' {
			return nil, fmt.Errorf("sched: expected ')' at offset %d in %q", p.pos, p.in)
		}
		p.pos++
		if len(body) == 0 {
			return nil, fmt.Errorf("sched: empty loop body in %q", p.in)
		}
		if len(body) == 1 {
			return scaled(body[0], count), nil
		}
		return Loop(count, body...), nil
	case isNameStart(c):
		name := p.parseName()
		a, ok := p.g.ActorByName(name)
		if !ok {
			return nil, fmt.Errorf("sched: unknown actor %q in %q", name, p.in)
		}
		return Leaf(1, a.ID), nil
	default:
		return nil, fmt.Errorf("sched: unexpected character %q at offset %d in %q", c, p.pos, p.in)
	}
}

// scaled multiplies a term's count by n, merging rather than nesting when the
// result is equivalent (n(1 S) == (n S)).
func scaled(n64 *Node, count int64) *Node {
	if count == 1 {
		return n64
	}
	if n64.Count == 1 {
		c := *n64
		c.Count = count
		return &c
	}
	return Loop(count, n64)
}

func (p *parser) parseNumber() (int64, error) {
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	v, err := strconv.ParseInt(p.in[start:p.pos], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sched: bad number %q: %v", p.in[start:p.pos], err)
	}
	if v < 1 {
		return 0, fmt.Errorf("sched: loop count %d < 1", v)
	}
	return v, nil
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9'
}

func (p *parser) parseName() string {
	start := p.pos
	p.pos++
	// Greedy multi-character names: extend while the next char is a name
	// char AND the single-character prefix is not itself an actor while the
	// extension would be unknown. Names are unambiguous because identifiers
	// cannot start with a digit; we simply take the longest match that is a
	// known actor, falling back to the full run.
	for p.pos < len(p.in) && isNameChar(p.in[p.pos]) {
		p.pos++
	}
	full := p.in[start:p.pos]
	if _, ok := p.g.ActorByName(full); ok {
		return full
	}
	// Single-letter actor sequences like "CGHI" are written without
	// separators in the paper; split greedily into known actor names.
	for end := p.pos - 1; end > start; end-- {
		prefix := p.in[start:end]
		if _, ok := p.g.ActorByName(prefix); ok {
			p.pos = end
			return prefix
		}
	}
	return full
}
