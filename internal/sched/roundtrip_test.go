package sched

import (
	"strings"
	"testing"

	"repro/internal/sdf"
)

// lettersGraph builds a graph with single-letter actors A..<n>, rates all 1,
// so any looped term over them parses.
func lettersGraph(t *testing.T, names string) *sdf.Graph {
	t.Helper()
	g := sdf.New("letters")
	for _, r := range names {
		g.AddActor(string(r))
	}
	return g
}

// TestRoundTripCanonical drives the parser and printer as a pair through a
// table of schedules: parsing the input must print the expected canonical
// form, and the printer must be a fixed point (parse(print(s)) prints
// identically), so printed schedules are stable currency in reports, golden
// files and crash reproducers.
func TestRoundTripCanonical(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
	}{
		{"A", "A"},
		{"AB", "AB"},
		{" A \tB\nC ", "ABC"}, // whitespace is ignored
		{"(1A)", "A"},         // unit counts vanish
		{"(3A)", "(3A)"},
		{"3A", "(3A)"}, // inline count binds to the name
		{"(3A)(6B)(2C)", "(3A)(6B)(2C)"},
		{"(3A(2B))(2C)", "(3A(2B))(2C)"},
		{"(3(A(2B)))(2C)", "(3A(2B))(2C)"}, // singleton group folds into its child
		{"(1(1(1A)))", "A"},                // nested unit loops collapse
		{"(2(3B)(5C))(7A)", "(2(3B)(5C))(7A)"},
		{"(2(2(2(2A))))", "(2(2(2(2A))))"}, // deep nesting survives verbatim
		{"10(AB)", "(10AB)"},               // inline count absorbs the group
		{"(10(ABC))(DEF)", "(10ABC)(DEF)"}, // singleton bodies fold away
	}
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			g := lettersGraph(t, "ABCDEF")
			s, err := Parse(g, tc.in)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.in, err)
			}
			got := s.String()
			if got != tc.canonical {
				t.Fatalf("Parse(%q).String() = %q, want %q", tc.in, got, tc.canonical)
			}
			s2, err := Parse(g, got)
			if err != nil {
				t.Fatalf("reparse of %q: %v", got, err)
			}
			if again := s2.String(); again != got {
				t.Fatalf("printer not a fixed point: %q -> %q", got, again)
			}
			if !sameFirings(s, s2) {
				t.Fatalf("round trip changed firings for %q", tc.in)
			}
		})
	}
}

// TestRoundTripPaperSchedules exercises the exact schedule strings the paper
// quotes — the satellite receiver's APGAN schedule being the hairiest mix of
// nested loops, inline counts and concatenated single-letter names.
func TestRoundTripPaperSchedules(t *testing.T) {
	g := lettersGraph(t, "ABCDEFGHIJKLMNPQRSTUVW")
	for _, text := range []string{
		"(24(11(4A)B)CGHI(11(4D)E)FKLM10(NSJTUP))(QRV240W)",
		"(7(7(8AB)C)D)(7E)F",
	} {
		s, err := Parse(g, text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		printed := s.String()
		s2, err := Parse(g, printed)
		if err != nil {
			t.Fatalf("reparse of %q: %v", printed, err)
		}
		if !sameFirings(s, s2) {
			t.Fatalf("round trip changed firings: %q -> %q", text, printed)
		}
		if again := s2.String(); again != printed {
			t.Fatalf("printer not a fixed point: %q -> %q", printed, again)
		}
	}
}

// TestParseErrorMessages pins down the failure mode per malformed input, not
// just that an error occurred.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"", "empty"},
		{"(", "unterminated"},
		{")", "unbalanced"},
		{"(3A", "unterminated"},
		{"3A)", "unbalanced"},
		{"(3X)", "unknown actor"},
		{"()", "empty"},
		{"3", "count"},                          // dangling count with nothing to bind
		{"(0A)", "count"},                       // zero loop count is invalid
		{"99999999999999999999A", "bad number"}, // overflows int64
	}
	g := lettersGraph(t, "ABC")
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			_, err := Parse(g, tc.in)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.in, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Parse(%q) error = %q, want substring %q", tc.in, err, tc.wantSub)
			}
		})
	}
}
