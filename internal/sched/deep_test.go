package sched

import (
	"strings"
	"testing"

	"repro/internal/sdf"
)

// TestDeepNestingFirings: firing counts multiply through arbitrarily deep
// loop nests.
func TestDeepNestingFirings(t *testing.T) {
	g := sdf.New("deep")
	a := g.AddActor("A")
	// ((2((3((4A)))))): counts 2*3*4 = 24.
	s := MustParse(g, "(2(3(4A)))")
	f := s.Firings()
	if f[a] != 24 {
		t.Errorf("A fires %d, want 24", f[a])
	}
	var steps int
	s.ForEachFiring(func(sdf.ActorID) bool { steps++; return true })
	if steps != 24 {
		t.Errorf("expanded %d firings, want 24", steps)
	}
}

// TestParseVeryDeep: the parser handles deep recursion gracefully.
func TestParseVeryDeep(t *testing.T) {
	g := sdf.New("d")
	g.AddActor("A")
	text := strings.Repeat("(2", 50) + "A" + strings.Repeat(")", 50)
	s, err := Parse(g, text)
	if err != nil {
		t.Fatal(err)
	}
	f := s.Firings()
	want := int64(1) << 50
	if f[0] != want {
		t.Errorf("fires %d, want 2^50", f[0])
	}
}

// TestSimulateSelfLoop: a self loop with sufficient delay executes; the
// token count never rises above its initial value under consume-first
// semantics... with simultaneous production the net is zero.
func TestSimulateSelfLoop(t *testing.T) {
	g := sdf.New("self")
	a := g.AddActor("A")
	g.AddEdge(a, a, 2, 2, 2)
	q := sdf.Repetitions{3}
	s := MustParse(g, "(3A)")
	if err := s.Validate(q); err != nil {
		t.Fatal(err)
	}
	res, err := s.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTokens[0] != 2 {
		t.Errorf("self-loop peak %d, want 2", res.MaxTokens[0])
	}
}

// TestSimulateSelfLoopUnderflow: insufficient self-loop delay deadlocks.
func TestSimulateSelfLoopUnderflow(t *testing.T) {
	g := sdf.New("selfbad")
	a := g.AddActor("A")
	g.AddEdge(a, a, 2, 2, 1)
	s := MustParse(g, "A")
	if _, err := s.Simulate(); err == nil {
		t.Error("self loop with short delay executed")
	}
}

// TestStringOmitsUnitCounts: rendering drops redundant 1s but keeps
// structure.
func TestStringOmitsUnitCounts(t *testing.T) {
	g := sdf.New("fmt")
	g.AddActor("A")
	g.AddActor("B")
	s := &Schedule{Graph: g, Body: []*Node{
		Loop(1, Leaf(1, 0), Leaf(2, 1)),
	}}
	if got := s.String(); got != "(A(2B))" {
		t.Errorf("String = %q, want (A(2B))", got)
	}
}

// TestBufMemWeightsWords: EQ 1 scales by per-token footprints.
func TestBufMemWeightsWords(t *testing.T) {
	g := sdf.New("w")
	a := g.AddActor("A")
	b := g.AddActor("B")
	e := g.AddEdge(a, b, 2, 1, 0)
	g.SetWords(e, 10)
	q := sdf.Repetitions{1, 2}
	s := MustParse(g, "A(2B)")
	if err := s.Validate(q); err != nil {
		t.Fatal(err)
	}
	bm, err := s.BufMem()
	if err != nil {
		t.Fatal(err)
	}
	if bm != 20 { // peak 2 tokens * 10 words
		t.Errorf("BufMem = %d, want 20", bm)
	}
}
