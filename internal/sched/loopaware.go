package sched

import (
	"fmt"
	"math"

	"repro/internal/num"
	"repro/internal/sdf"
)

// Loop-aware token simulation. Expanding a looped schedule into its firing
// sequence costs O(total firings), which grows exponentially with graph size
// on multirate graphs (deeply nested loop counts multiply). Instead,
// Simulate recurses over the schedule *tree* and summarizes each subtree
// with three closed-form per-edge quantities, all relative to the token
// level at the instant the subtree starts:
//
//	net    — net token change after executing the subtree completely
//	peak   — max level observed right after a production on the edge
//	trough — min level observed right after a consumption on the edge
//
// peak/trough are sampled exactly where the firing-expansion simulator
// samples them (after each production for max_tokens, after each consumption
// for underflow detection), so the two paths agree bit for bit.
//
// For a leaf (n A) with per-firing delta d = prod − cons on an adjacent
// edge, firing i passes level (i−1)·d − cons after consuming and i·d after
// producing, so
//
//	peak   = max(d, n·d)             (observed after firing 1 or firing n)
//	trough = −cons + min(0, (n−1)·d) (observed during firing 1 or firing n)
//	net    = n·d
//
// For a loop repeating a body with summary (net b, peak p, trough t) n
// times, iteration j starts at level (j−1)·b, hence
//
//	peak   = p + (n−1)·b  if b > 0, else p
//	trough = t + (n−1)·b  if b < 0, else t
//	net    = n·b
//
// Summaries are kept sparse — a subtree mentions only the edges adjacent to
// its own actors, sorted by edge ID — and sequencing merges sorted
// summaries in place from the back, so the whole pass costs
// O(schedule nodes · adjacent edges) time and amortizes allocations like
// append, independent of every loop count.

const (
	unobservedPeak   = math.MinInt64 // no production on the edge in this subtree
	unobservedTrough = math.MaxInt64 // no consumption on the edge in this subtree
)

// edgeAcc is one edge's (net, peak, trough) summary within a subtree.
type edgeAcc struct {
	e                 sdf.EdgeID
	net, peak, trough int64
}

// leafInto appends the summary of a firing block — one entry per edge
// adjacent to its actor, sorted by edge ID — to buf and returns it.
func leafInto(buf []edgeAcc, g *sdf.Graph, n *Node) []edgeAcc {
	start := len(buf)
	for _, eid := range g.In(n.Actor) {
		e := g.Edge(eid)
		cons := e.Cons
		var prod int64
		if e.Src == n.Actor { // self loop; present in Out too, skipped there
			prod = e.Prod
		}
		d := prod - cons
		a := edgeAcc{
			e:      eid,
			net:    n.Count * d,
			peak:   unobservedPeak,
			trough: -cons + min(0, (n.Count-1)*d),
		}
		if prod > 0 {
			a.peak = max(d, n.Count*d)
		}
		buf = append(buf, a)
	}
	for _, eid := range g.Out(n.Actor) {
		e := g.Edge(eid)
		if e.Dst == n.Actor {
			continue // self loop, already summarized from the In list
		}
		// Rates are copied to locals before multiplying: the closed forms in
		// this file deliberately use raw arithmetic (see the package doc on
		// the final fold in SimulateLoopAware, where the results are
		// overflow-checked against the edge delay).
		prod := e.Prod
		buf = append(buf, edgeAcc{
			e:      eid,
			net:    n.Count * prod,
			peak:   n.Count * prod,
			trough: unobservedTrough,
		})
	}
	// Adjacency lists are tiny; insertion sort keeps this allocation free.
	s := buf[start:]
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].e < s[j-1].e; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return buf
}

// combine returns the summary of "a then c" on one edge: c's observations
// shift by a's net level, nets add.
func combine(a, c edgeAcc) edgeAcc {
	if c.peak != unobservedPeak {
		if v := a.net + c.peak; a.peak == unobservedPeak || v > a.peak {
			a.peak = v
		}
	}
	if c.trough != unobservedTrough {
		if v := a.net + c.trough; a.trough == unobservedTrough || v < a.trough {
			a.trough = v
		}
	}
	a.net += c.net
	return a
}

// sequence appends child's summary to acc as if the child executed right
// after everything already accumulated. Both inputs are sorted by edge ID;
// the sorted union is returned. acc's storage is reused (merging backward in
// place) whenever its capacity allows; child is never modified.
func sequence(acc, child []edgeAcc) []edgeAcc {
	if len(child) == 0 {
		return acc
	}
	if len(acc) == 0 {
		return append(acc, child...)
	}
	// Union size via a two-pointer count.
	u := len(acc) + len(child)
	for i, j := 0, 0; i < len(acc) && j < len(child); {
		switch {
		case acc[i].e < child[j].e:
			i++
		case acc[i].e > child[j].e:
			j++
		default:
			u--
			i++
			j++
		}
	}
	if cap(acc) < u {
		merged := make([]edgeAcc, 0, max(u+8, 2*cap(acc)))
		i, j := 0, 0
		for i < len(acc) || j < len(child) {
			switch {
			case j >= len(child) || (i < len(acc) && acc[i].e < child[j].e):
				merged = append(merged, acc[i])
				i++
			case i >= len(acc) || acc[i].e > child[j].e:
				// First activity on this edge: entry carries over unshifted.
				merged = append(merged, child[j])
				j++
			default:
				merged = append(merged, combine(acc[i], child[j]))
				i++
				j++
			}
		}
		return merged
	}
	// Backward in-place merge: the write cursor k never catches up with the
	// read cursor i, because at least as many entries remain to write as
	// remain to read from acc.
	i, k := len(acc)-1, u-1
	acc = acc[:u]
	for j := len(child) - 1; j >= 0; {
		switch {
		case i >= 0 && acc[i].e > child[j].e:
			acc[k] = acc[i]
			i--
		case i >= 0 && acc[i].e == child[j].e:
			acc[k] = combine(acc[i], child[j])
			i--
			j--
		default:
			acc[k] = child[j]
			j--
		}
		k--
	}
	return acc
}

// sequenceInto merges pre (executing first) into post's storage, for the
// small-to-large case |pre| ≪ |post|: entries on shared edges combine via a
// binary search, post-only entries stay put (pre's net there is zero), and
// the few pre-only edges merge in afterwards. Cost is
// O(|pre|·log|post|) instead of O(|post|). post must be exclusively owned.
func sequenceInto(pre, post []edgeAcc) []edgeAcc {
	var stack [16]edgeAcc
	extras := stack[:0]
	for _, a := range pre {
		lo, hi := 0, len(post)
		for lo < hi {
			mid := (lo + hi) / 2
			if post[mid].e < a.e {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(post) && post[lo].e == a.e {
			post[lo] = combine(a, post[lo])
		} else {
			extras = append(extras, a) // stays sorted: pre is sorted
		}
	}
	if len(extras) == 0 {
		return post
	}
	// Disjoint sorted merge of the leftover pre-only entries; they carry
	// over verbatim since post never touched those edges, so the argument
	// order (which only affects shared edges) is irrelevant — and this
	// order reuses post's storage rather than the stack buffer's.
	return sequence(post, extras)
}

// repeat applies a loop count to a fully-sequenced body summary in closed
// form.
func repeat(acc []edgeAcc, count int64) {
	if count == 1 {
		return
	}
	for i := range acc {
		b := acc[i].net
		if acc[i].peak != unobservedPeak && b > 0 {
			acc[i].peak += (count - 1) * b
		}
		if acc[i].trough != unobservedTrough && b < 0 {
			acc[i].trough += (count - 1) * b
		}
		acc[i].net = count * b
	}
}

// appendNode sequences the summary of one schedule term onto acc and returns
// the (possibly reallocated) accumulator. Leaves fold in through a small
// stack buffer; internal nodes recurse, adopting their first child's
// accumulator.
func appendNode(acc []edgeAcc, g *sdf.Graph, n *Node) []edgeAcc {
	if n.IsLeaf() {
		var stack [16]edgeAcc
		ls := leafInto(stack[:0], g, n)
		if len(acc) == 0 && cap(acc) == 0 {
			// First summary: materialize with growth slack.
			return append(make([]edgeAcc, 0, len(ls)+8), ls...)
		}
		return sequence(acc, ls)
	}
	var body []edgeAcc
	for _, ch := range n.Children {
		body = appendNode(body, g, ch)
	}
	repeat(body, n.Count)
	if len(acc) == 0 && cap(acc) == 0 {
		return body // adopt the child accumulator outright
	}
	if len(body) > 2*len(acc) {
		// Small-to-large: fold the few accumulated entries into the big
		// subtree summary (which this call exclusively owns) instead of
		// rewriting the big summary entry by entry.
		return sequenceInto(acc, body)
	}
	return sequence(acc, body)
}

// treeStats returns the schedule subtree's node count and total firings,
// with firings saturated at statCap so deeply nested loop counts cannot
// overflow. mult is the product of the enclosing loop counts (≤ statCap).
const statCap = int64(1) << 40

func treeStats(ns []*Node, mult int64) (nodes, firings int64) {
	for _, n := range ns {
		nodes++
		m := statCap
		if n.Count <= statCap/mult {
			m = mult * n.Count
		}
		if n.IsLeaf() {
			firings += m
		} else {
			cn, cf := treeStats(n.Children, m)
			nodes += cn
			firings += cf
		}
		if firings > statCap {
			firings = statCap
		}
	}
	return
}

// expansionFactor picks the simulation path: when the period has at most
// this many firings per schedule node, plain expansion is cheaper than
// building and merging subtree summaries (measured crossover on the Table 1
// systems; near-homogeneous graphs sit well below it, multirate graphs well
// above).
const expansionFactor = 4

// Simulate computes one period of the schedule — max_tokens per edge, final
// token counts, and firing counts. It dispatches to whichever of the two
// equivalent simulators is cheaper for this schedule's shape: firing
// expansion when the firing sequence is barely longer than the schedule
// tree itself, the loop-aware recursion otherwise.
func (s *Schedule) Simulate() (*SimResult, error) {
	nodes, firings := treeStats(s.Body, 1)
	if firings <= expansionFactor*nodes {
		return s.SimulateByExpansion()
	}
	return s.SimulateLoopAware()
}

// SimulateLoopAware computes one period of the schedule with the loop-aware
// recursion above. It returns an error if any firing would consume tokens
// that are not present (deadlock / invalid schedule), exactly as the
// firing-expansion SimulateByExpansion does, but in time independent of the
// loop counts.
func (s *Schedule) SimulateLoopAware() (*SimResult, error) {
	g := s.Graph
	var acc []edgeAcc
	for _, n := range s.Body {
		acc = appendNode(acc, g, n)
	}
	res := &SimResult{
		MaxTokens:   make([]int64, g.NumEdges()),
		FinalTokens: make([]int64, g.NumEdges()),
		Firings:     s.Firings(),
	}
	for _, e := range g.Edges() {
		// Edges untouched by the schedule stay at their initial delay.
		res.MaxTokens[e.ID] = e.Delay
		res.FinalTokens[e.ID] = e.Delay
	}
	for _, a := range acc {
		e := g.Edge(a.e)
		if a.trough != unobservedTrough {
			lvl, err := num.CheckedAdd(e.Delay, a.trough)
			if err != nil {
				return nil, overflowEdge(g, e)
			}
			if lvl < 0 {
				return nil, fmt.Errorf("sched: firing %s needs %d more tokens on edge %d (%s->%s)",
					g.Actor(e.Dst).Name, -lvl, e.ID,
					g.Actor(e.Src).Name, g.Actor(e.Dst).Name)
			}
		}
		if a.peak != unobservedPeak {
			lvl, err := num.CheckedAdd(e.Delay, a.peak)
			if err != nil {
				return nil, overflowEdge(g, e)
			}
			if lvl > res.MaxTokens[e.ID] {
				res.MaxTokens[e.ID] = lvl
			}
		}
		final, err := num.CheckedAdd(e.Delay, a.net)
		if err != nil {
			return nil, overflowEdge(g, e)
		}
		res.FinalTokens[e.ID] = final
	}
	return res, nil
}

// overflowEdge is the typed error for a token count exceeding int64 range.
func overflowEdge(g *sdf.Graph, e sdf.Edge) error {
	return fmt.Errorf("sched: token count on edge %d (%s->%s) overflows: %w",
		e.ID, g.Actor(e.Src).Name, g.Actor(e.Dst).Name, num.ErrOverflow)
}
