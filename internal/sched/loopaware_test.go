package sched

import (
	"math/rand"
	"testing"

	"repro/internal/randsdf"
	"repro/internal/sdf"
)

// checkAgainstOracle verifies SimulateLoopAware against the firing-expansion
// oracle on one schedule: both must agree on error/no-error, and on success
// on every MaxTokens, FinalTokens, and Firings entry. The dispatching
// Simulate is exercised too, so both sides of its threshold stay covered.
func checkAgainstOracle(t *testing.T, s *Schedule, label string) {
	t.Helper()
	fast, fastErr := s.SimulateLoopAware()
	slow, slowErr := s.SimulateByExpansion()
	if _, dispErr := s.Simulate(); (dispErr == nil) != (slowErr == nil) {
		t.Fatalf("%s: Simulate err=%v, oracle err=%v", label, dispErr, slowErr)
	}
	if (fastErr == nil) != (slowErr == nil) {
		t.Fatalf("%s: loop-aware err=%v, oracle err=%v", label, fastErr, slowErr)
	}
	if fastErr != nil {
		return
	}
	for e := range slow.MaxTokens {
		if fast.MaxTokens[e] != slow.MaxTokens[e] {
			t.Errorf("%s: max_tokens(edge %d) = %d, oracle %d", label, e, fast.MaxTokens[e], slow.MaxTokens[e])
		}
		if fast.FinalTokens[e] != slow.FinalTokens[e] {
			t.Errorf("%s: final(edge %d) = %d, oracle %d", label, e, fast.FinalTokens[e], slow.FinalTokens[e])
		}
	}
	for a := range slow.Firings {
		if fast.Firings[a] != slow.Firings[a] {
			t.Errorf("%s: firings(%d) = %d, oracle %d", label, a, fast.Firings[a], slow.Firings[a])
		}
	}
}

// TestLoopAwareFig1 cross-checks the paper's running example, including a
// deliberately underflowing order.
func TestLoopAwareFig1(t *testing.T) {
	g, _ := fig1(t)
	for _, text := range []string{
		"(3A)(6B)(2C)",
		"(3A(2B))(2C)",
		"(3(A(2B)))(2C)",
		"(2C)(3A)(6B)",        // underflows on (B,C)
		"A(2B)A(4B)(2C)A(2C)", // multi-appearance, invalid period — still simulable
	} {
		s, err := Parse(g, text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		checkAgainstOracle(t, s, text)
	}
}

// TestLoopAwareSelfLoops covers self-loop edges, whose consume and produce
// contributions land on the same edge within one firing.
func TestLoopAwareSelfLoops(t *testing.T) {
	g := sdf.New("self")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, a, 2, 2, 2) // net-zero self loop
	g.AddEdge(a, b, 3, 1, 0)
	g.AddEdge(b, b, 1, 2, 5) // net-negative self loop draining its delay
	for _, text := range []string{"(4A)(12B)", "(2(2A(6B)))", "(4A)(2(6B))"} {
		s := MustParse(g, text)
		checkAgainstOracle(t, s, text)
	}
	// Insufficient self-loop delay must fail on both paths.
	bad := MustParse(g, "(4A)(3(6B))")
	checkAgainstOracle(t, bad, "(4A)(3(6B))")
	if _, err := bad.Simulate(); err == nil {
		t.Error("expected underflow with drained self-loop delay")
	}
}

// TestLoopAwareDeepNesting exercises a loop nest whose expansion would be
// 2^40 firings: the loop-aware path must evaluate it instantly while the
// closed-form values stay exact.
func TestLoopAwareDeepNesting(t *testing.T) {
	g := sdf.New("deep")
	a := g.AddActor("A")
	b := g.AddActor("B")
	g.AddEdge(a, b, 1, 1, 0)
	// (2(2(...(2 A B)...))) nested 40 deep: A and B alternate, so the edge
	// peak stays 1 while both actors fire 2^40 times.
	inner := Loop(2, Leaf(1, a), Leaf(1, b))
	for i := 0; i < 39; i++ {
		inner = Loop(2, inner)
	}
	s := &Schedule{Graph: g, Body: []*Node{inner}}
	res, err := s.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(1) << 40
	if res.Firings[a] != want || res.Firings[b] != want {
		t.Errorf("firings = %v, want 2^40", res.Firings)
	}
	if res.MaxTokens[0] != 1 {
		t.Errorf("max_tokens = %d, want 1", res.MaxTokens[0])
	}
	if res.FinalTokens[0] != 0 {
		t.Errorf("final = %d, want 0", res.FinalTokens[0])
	}
}

// TestLoopAwareRandomSchedules fuzzes the recursion against the oracle with
// random graphs (delays included) under random valid and random shuffled
// (often invalid) loop structures.
func TestLoopAwareRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		g := randsdf.Graph(rng, randsdf.Config{
			Actors:    2 + rng.Intn(8),
			DelayProb: 0.4,
		})
		q, err := g.Repetitions()
		if err != nil {
			t.Fatal(err)
		}
		order, err := g.TopologicalSort(q)
		if err != nil {
			t.Fatal(err)
		}
		// Random lexical shuffles produce underflowing schedules too; both
		// paths must classify them identically.
		if trial%3 == 0 {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		s := randomNest(rng, g, q, order)
		checkAgainstOracle(t, s, s.String())
	}
}

// randomNest builds a random two-level looped schedule over the given order:
// adjacent actors are grouped under a shared loop count when their repetition
// counts allow it.
func randomNest(rng *rand.Rand, g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) *Schedule {
	var body []*Node
	for i := 0; i < len(order); {
		// Try to group this actor with the next under their gcd.
		if i+1 < len(order) && rng.Intn(2) == 0 {
			a, b := order[i], order[i+1]
			gg := gcdPair(q[a], q[b])
			if gg > 1 {
				body = append(body, Loop(gg, Leaf(q[a]/gg, a), Leaf(q[b]/gg, b)))
				i += 2
				continue
			}
		}
		body = append(body, Leaf(q[order[i]], order[i]))
		i++
	}
	return &Schedule{Graph: g, Body: body}
}

func gcdPair(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
