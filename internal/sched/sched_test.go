package sched

import (
	"testing"

	"repro/internal/sdf"
)

// fig2 builds the Fig. 2 graph: A -(2,1)-> B -(1,2)-> C? The paper gives four
// schedules with non-shared costs 50, 40, 60, 50 for buffers; we instead use
// the Sec. 4 running example (Fig. 1 rates) whose numbers are fully quoted:
// A -(2,1)-> B -(1,3)-> C, q = (3,6,2),
// S1 = (3A)(6B)(2C): max_tokens = 6+6, S2 = (3A(2B))(2C): 2+6 ... the paper
// says max_tokens((A,B),S1)=7 with a unit delay on (A,B). We model that:
// del(A,B)=1.
func fig1(t testing.TB) (*sdf.Graph, sdf.Repetitions) {
	t.Helper()
	g := sdf.New("fig1")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 1)
	g.AddEdge(b, c, 1, 3, 0)
	q, err := g.Repetitions()
	if err != nil {
		t.Fatalf("Repetitions: %v", err)
	}
	return g, q
}

func TestRepetitionsFig1(t *testing.T) {
	_, q := fig1(t)
	if q[0] != 3 || q[1] != 6 || q[2] != 2 {
		t.Fatalf("q = %v, want [3 6 2]", q)
	}
}

func TestMaxTokensPaperValues(t *testing.T) {
	g, q := fig1(t)
	s1 := MustParse(g, "(3A)(6B)(2C)")
	if err := s1.Validate(q); err != nil {
		t.Fatalf("S1 invalid: %v", err)
	}
	r1, err := s1.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: max_tokens((A,B), S1) = 7 (6 produced + 1 delay), bufmem = 13.
	if r1.MaxTokens[0] != 7 {
		t.Errorf("max_tokens(AB, S1) = %d, want 7", r1.MaxTokens[0])
	}
	if r1.MaxTokens[1] != 6 {
		t.Errorf("max_tokens(BC, S1) = %d, want 6", r1.MaxTokens[1])
	}
	if bm, _ := s1.BufMem(); bm != 13 {
		t.Errorf("bufmem(S1) = %d, want 13", bm)
	}

	s2 := MustParse(g, "(3A(2B))(2C)")
	if err := s2.Validate(q); err != nil {
		t.Fatalf("S2 invalid: %v", err)
	}
	r2, err := s2.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: max_tokens((A,B), S2) = 3, bufmem(S2) = 9.
	if r2.MaxTokens[0] != 3 {
		t.Errorf("max_tokens(AB, S2) = %d, want 3", r2.MaxTokens[0])
	}
	if bm, _ := s2.BufMem(); bm != 9 {
		t.Errorf("bufmem(S2) = %d, want 9", bm)
	}
}

func TestFlatSAS(t *testing.T) {
	g, q := fig1(t)
	order, err := g.TopologicalSort(q)
	if err != nil {
		t.Fatal(err)
	}
	s := FlatSAS(g, q, order)
	if got := s.String(); got != "(3A)(6B)(2C)" {
		t.Errorf("FlatSAS = %q", got)
	}
	if !s.IsSingleAppearance() {
		t.Error("flat SAS should be single appearance")
	}
	if err := s.Validate(q); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	g, _ := fig1(t)
	for _, text := range []string{
		"(3A)(6B)(2C)",
		"(3A(2B))(2C)",
		"(3(A(2B)))(2C)",
		"3A6B2C",
		"(2(3B)(5C))(7A)", // lexorder example from Sec. 4 (counts arbitrary)
	} {
		s, err := Parse(g, text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		// Re-parse of the printed form must expand to the identical firing
		// sequence.
		printed := s.String()
		s2, err := Parse(g, printed)
		if err != nil {
			t.Errorf("reparse of %q (from %q): %v", printed, text, err)
			continue
		}
		if !sameFirings(s, s2) {
			t.Errorf("round trip changed firings: %q -> %q", text, printed)
		}
	}
}

func sameFirings(a, b *Schedule) bool {
	var fa, fb []sdf.ActorID
	a.ForEachFiring(func(x sdf.ActorID) bool { fa = append(fa, x); return true })
	b.ForEachFiring(func(x sdf.ActorID) bool { fb = append(fb, x); return true })
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] != fb[i] {
			return false
		}
	}
	return true
}

func TestParseConcatenatedNames(t *testing.T) {
	g := sdf.New("letters")
	for _, n := range []string{"C", "G", "H", "I"} {
		g.AddActor(n)
	}
	s, err := Parse(g, "CGHI")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	order := s.LexOrder()
	if len(order) != 4 {
		t.Fatalf("got %d actors, want 4", len(order))
	}
	want := []string{"C", "G", "H", "I"}
	for i, a := range order {
		if g.Actor(a).Name != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, g.Actor(a).Name, want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	g, _ := fig1(t)
	for _, bad := range []string{"", "(", ")", "(3A", "3A)", "(3X)", "()", "3", "(0A)"} {
		if _, err := Parse(g, bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestParseInlineCount(t *testing.T) {
	g := sdf.New("sat")
	for _, n := range []string{"N", "S", "J", "T", "U", "P", "W", "Q", "R", "V"} {
		g.AddActor(n)
	}
	s, err := Parse(g, "(10(NSJTUP))(QRV240W)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f := s.Firings()
	w, _ := g.ActorByName("W")
	n, _ := g.ActorByName("N")
	q, _ := g.ActorByName("Q")
	if f[w.ID] != 240 {
		t.Errorf("W fires %d, want 240", f[w.ID])
	}
	if f[n.ID] != 10 {
		t.Errorf("N fires %d, want 10", f[n.ID])
	}
	if f[q.ID] != 1 {
		t.Errorf("Q fires %d, want 1", f[q.ID])
	}
}

func TestValidateRejectsUnderflow(t *testing.T) {
	g, q := fig1(t)
	// C before B: B->C has no delay, so (2C) first underflows.
	s := MustParse(g, "(2C)(3A)(6B)")
	if err := s.Validate(q); err == nil {
		t.Error("expected underflow error")
	}
}

func TestValidateRejectsWrongFirings(t *testing.T) {
	g, q := fig1(t)
	s := MustParse(g, "(3A)(6B)") // C missing entirely; tokens left on BC
	if err := s.Validate(q); err == nil {
		t.Error("expected validation error for missing firings")
	}
}

func TestAppearancesAndLexOrder(t *testing.T) {
	g, _ := fig1(t)
	s := MustParse(g, "(2(3B)(5C))(7A)")
	app := s.Appearances()
	for i, c := range app {
		if c != 1 {
			t.Errorf("appearances[%d] = %d", i, c)
		}
	}
	order := s.LexOrder()
	names := []string{"B", "C", "A"}
	for i, a := range order {
		if g.Actor(a).Name != names[i] {
			t.Errorf("lexorder[%d] = %s, want %s", i, g.Actor(a).Name, names[i])
		}
	}
	if !s.IsSingleAppearance() {
		t.Error("should be SAS")
	}
	multi := MustParse(g, "A(2B)A(4B)(2C)A")
	if multi.IsSingleAppearance() {
		t.Error("multi-appearance schedule misclassified")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, _ := fig1(t)
	s := MustParse(g, "(3A(2B))(2C)")
	c := s.Body[0].Clone()
	c.Children[1].Count = 99
	if s.Body[0].Children[1].Count != 2 {
		t.Error("Clone shares children")
	}
}

func TestLeafLoopPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Leaf(0)", func() { Leaf(0, 0) })
	mustPanic("Loop(0)", func() { Loop(0, Leaf(1, 0)) })
	mustPanic("Loop empty", func() { Loop(2) })
}

func TestForEachFiringEarlyStop(t *testing.T) {
	g, _ := fig1(t)
	s := MustParse(g, "(3A)(6B)(2C)")
	n := 0
	s.ForEachFiring(func(sdf.ActorID) bool { n++; return n < 4 })
	if n != 4 {
		t.Errorf("stopped after %d firings, want 4", n)
	}
}

func TestCodeSize(t *testing.T) {
	g, _ := fig1(t)
	flat := MustParse(g, "(3A)(6B)(2C)")
	// 3 appearances + 3 loops (counts 3, 6, 2).
	if got := flat.CodeSize(1); got != 6 {
		t.Errorf("flat code size = %d, want 6", got)
	}
	nested := MustParse(g, "(3A(2B))(2C)")
	// 3 appearances + loops 3, 2, 2.
	if got := nested.CodeSize(1); got != 6 {
		t.Errorf("nested code size = %d, want 6", got)
	}
	multi := MustParse(g, "A(2B)A(4B)(2C)A")
	// 6 appearances + 3 loops.
	if got := multi.CodeSize(1); got != 9 {
		t.Errorf("multi-appearance code size = %d, want 9", got)
	}
	if got := flat.CodeSize(0); got != 3 {
		t.Errorf("zero-overhead code size = %d, want 3", got)
	}
}
