// Package sched implements looped schedules for SDF graphs: the schedule
// term language "(n S1 S2 ...)" of Bhattacharyya et al., single appearance
// schedules (SAS), firing expansion, token-exchange simulation, per-edge
// max_tokens, and the non-shared buffer memory metric bufmem (EQ 1 of the
// paper).
package sched

import (
	"fmt"
	"strings"

	"repro/internal/sdf"
)

// Node is one term of a looped schedule. A Node is either a leaf — a firing
// block "(Count Actor)" — or an internal loop "(Count Children...)" whose
// body is executed Count times. Count must be >= 1.
//
// The schedule loop notation of the paper maps directly: 2(B(2C)) is a Node
// with Count 2 and children [leaf B, leaf (2 C)].
type Node struct {
	Count    int64
	Actor    sdf.ActorID // meaningful only for leaves
	Children []*Node     // nil for leaves
}

// Leaf returns a leaf node firing actor a count times.
func Leaf(count int64, a sdf.ActorID) *Node {
	if count < 1 {
		panic("sched: leaf count < 1")
	}
	return &Node{Count: count, Actor: a}
}

// Loop returns an internal loop node with the given count and body.
func Loop(count int64, body ...*Node) *Node {
	if count < 1 {
		panic("sched: loop count < 1")
	}
	if len(body) == 0 {
		panic("sched: empty loop body")
	}
	return &Node{Count: count, Children: body}
}

// IsLeaf reports whether n is a firing block.
func (n *Node) IsLeaf() bool { return n.Children == nil }

// Clone returns a deep copy of the schedule term.
func (n *Node) Clone() *Node {
	c := &Node{Count: n.Count, Actor: n.Actor}
	if n.Children != nil {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Schedule is a complete looped schedule: a sequence of top-level terms
// executed once per schedule period, with access to the graph it schedules.
type Schedule struct {
	Graph *sdf.Graph
	Body  []*Node
}

// FlatSAS builds the flat single appearance schedule (q1 x1)(q2 x2)...(qn xn)
// for the given lexical order.
func FlatSAS(g *sdf.Graph, q sdf.Repetitions, order []sdf.ActorID) *Schedule {
	body := make([]*Node, len(order))
	for i, a := range order {
		body[i] = Leaf(q[a], a)
	}
	return &Schedule{Graph: g, Body: body}
}

// String renders the schedule in the paper's notation, e.g. "(3A(2B))(2C)".
// A count of 1 is omitted; parentheses are kept around every loop with more
// than one body term or a count greater than one.
func (s *Schedule) String() string {
	var b strings.Builder
	for _, n := range s.Body {
		writeNode(&b, s.Graph, n)
	}
	return b.String()
}

func writeNode(b *strings.Builder, g *sdf.Graph, n *Node) {
	if n.IsLeaf() {
		if n.Count == 1 {
			b.WriteString(g.Actor(n.Actor).Name)
			return
		}
		fmt.Fprintf(b, "(%d%s)", n.Count, g.Actor(n.Actor).Name)
		return
	}
	if n.Count == 1 && len(n.Children) == 1 {
		writeNode(b, g, n.Children[0])
		return
	}
	b.WriteByte('(')
	if n.Count != 1 {
		fmt.Fprintf(b, "%d", n.Count)
	}
	for _, ch := range n.Children {
		writeNode(b, g, ch)
	}
	b.WriteByte(')')
}

// ForEachFiring expands the schedule into its firing sequence, calling fn for
// every actor firing in order. fn returning false stops the expansion early
// and makes ForEachFiring return false.
func (s *Schedule) ForEachFiring(fn func(a sdf.ActorID) bool) bool {
	for _, n := range s.Body {
		if !forEachFiring(n, fn) {
			return false
		}
	}
	return true
}

func forEachFiring(n *Node, fn func(a sdf.ActorID) bool) bool {
	for i := int64(0); i < n.Count; i++ {
		if n.IsLeaf() {
			if !fn(n.Actor) {
				return false
			}
			continue
		}
		for _, ch := range n.Children {
			if !forEachFiring(ch, fn) {
				return false
			}
		}
	}
	return true
}

// Firings returns the number of firings of each actor in one period.
func (s *Schedule) Firings() []int64 {
	count := make([]int64, s.Graph.NumActors())
	for _, n := range s.Body {
		addFirings(n, 1, count)
	}
	return count
}

func addFirings(n *Node, mult int64, count []int64) {
	m := mult * n.Count
	if n.IsLeaf() {
		count[n.Actor] += m
		return
	}
	for _, ch := range n.Children {
		addFirings(ch, m, count)
	}
}

// Appearances returns how many leaf blocks mention each actor. A schedule is
// a single appearance schedule iff every entry is exactly 1 (or 0 for actors
// absent from the graph component being scheduled).
func (s *Schedule) Appearances() []int {
	app := make([]int, s.Graph.NumActors())
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			app[n.Actor]++
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, n := range s.Body {
		walk(n)
	}
	return app
}

// IsSingleAppearance reports whether every actor of the graph appears in
// exactly one leaf block.
func (s *Schedule) IsSingleAppearance() bool {
	for a, c := range s.Appearances() {
		_ = a
		if c != 1 {
			return false
		}
	}
	return true
}

// LexOrder returns the lexical ordering of the schedule: actors in order of
// first appearance in the firing-block sequence (left to right, depth first).
func (s *Schedule) LexOrder() []sdf.ActorID {
	seen := make([]bool, s.Graph.NumActors())
	var order []sdf.ActorID
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			if !seen[n.Actor] {
				seen[n.Actor] = true
				order = append(order, n.Actor)
			}
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, n := range s.Body {
		walk(n)
	}
	return order
}

// CodeSize returns the inline code-size metric of the schedule: one unit per
// firing-block appearance plus loopOverhead units for every loop with a
// count greater than one (the model of Sec. 3 — a single appearance schedule
// of n actors costs n appearances plus its loop control).
func (s *Schedule) CodeSize(loopOverhead int64) int64 {
	var size int64
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Count > 1 {
			size += loopOverhead
		}
		if n.IsLeaf() {
			size++
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, n := range s.Body {
		walk(n)
	}
	return size
}
