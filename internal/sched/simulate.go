package sched

import (
	"fmt"

	"repro/internal/num"
	"repro/internal/sdf"
)

// SimResult holds the outcome of simulating one period of a schedule.
type SimResult struct {
	// MaxTokens[e] is max_tokens(e, S): the maximum number of tokens queued
	// on edge e at any instant during the period (including initial delays).
	MaxTokens []int64
	// FinalTokens[e] is the token count after the period; for a valid
	// schedule it equals the edge's delay.
	FinalTokens []int64
	// Firings[a] is the number of times actor a fired.
	Firings []int64
}

// SimulateByExpansion executes one period of the schedule firing by firing,
// tracking the token count of every edge. It returns an error if any firing
// would consume tokens that are not present (deadlock / invalid schedule).
//
// Its cost is O(total firings), which grows exponentially with graph size on
// multirate graphs; Simulate computes the same result in closed form per
// loop. This path is kept as the reference oracle the loop-aware recursion
// is differentially tested against.
func (s *Schedule) SimulateByExpansion() (*SimResult, error) {
	g := s.Graph
	tokens := make([]int64, g.NumEdges())
	maxTok := make([]int64, g.NumEdges())
	for _, e := range g.Edges() {
		tokens[e.ID] = e.Delay
		maxTok[e.ID] = e.Delay
	}
	firings := make([]int64, g.NumActors())
	var failure error
	ok := s.ForEachFiring(func(a sdf.ActorID) bool {
		for _, eid := range g.In(a) {
			e := g.Edge(eid)
			if tokens[eid] < e.Cons {
				failure = fmt.Errorf("sched: firing %s needs %d tokens on edge %d, has %d",
					g.Actor(a).Name, e.Cons, eid, tokens[eid])
				return false
			}
			tokens[eid] -= e.Cons
		}
		for _, eid := range g.Out(a) {
			e := g.Edge(eid)
			t, err := num.CheckedAdd(tokens[eid], e.Prod)
			if err != nil {
				failure = overflowEdge(g, e)
				return false
			}
			tokens[eid] = t
			if t > maxTok[eid] {
				maxTok[eid] = t
			}
		}
		firings[a]++
		return true
	})
	if !ok {
		return nil, failure
	}
	return &SimResult{MaxTokens: maxTok, FinalTokens: tokens, Firings: firings}, nil
}

// Validate checks that the schedule is a valid periodic schedule for its
// graph: every actor fires exactly q times, no firing underflows an edge, and
// every edge returns to its initial token count.
func (s *Schedule) Validate(q sdf.Repetitions) error {
	res, err := s.Simulate()
	if err != nil {
		return err
	}
	for a := 0; a < s.Graph.NumActors(); a++ {
		if res.Firings[a] != q[a] {
			return fmt.Errorf("sched: actor %s fires %d times, want q=%d",
				s.Graph.Actor(sdf.ActorID(a)).Name, res.Firings[a], q[a])
		}
	}
	for _, e := range s.Graph.Edges() {
		if res.FinalTokens[e.ID] != e.Delay {
			return fmt.Errorf("sched: edge %d ends with %d tokens, want delay %d",
				e.ID, res.FinalTokens[e.ID], e.Delay)
		}
	}
	return nil
}

// BufMem returns the non-shared buffer memory requirement of the schedule
// (EQ 1) in memory words: the sum over all edges of max_tokens(e, S) scaled
// by the edge's per-token footprint. It returns an error if the schedule is
// not executable.
func (s *Schedule) BufMem() (int64, error) {
	res, err := s.Simulate()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range s.Graph.Edges() {
		words, err := num.CheckedMul(res.MaxTokens[e.ID], e.Words)
		if err != nil {
			return 0, overflowEdge(s.Graph, e)
		}
		if total, err = num.CheckedAdd(total, words); err != nil {
			return 0, fmt.Errorf("sched: bufmem of %s overflows: %w", s, num.ErrOverflow)
		}
	}
	return total, nil
}
