package sched

import (
	"testing"

	"repro/internal/sdf"
)

// FuzzParse feeds arbitrary text to the schedule parser; it must never
// panic, and whenever it succeeds the printed form must re-parse to the
// same firing sequence.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"(3A)(6B)(2C)",
		"(3A(2B))(2C)",
		"3A6B2C",
		"((((A))))",
		"(24(11(4A)B)C)",
		"A B C",
		"(2(3B)(5C))(7A)",
		"(((",
		"42",
		"(0A)",
		"A2B",
	} {
		f.Add(seed)
	}
	g := sdf.New("fuzz")
	for _, n := range []string{"A", "B", "C"} {
		g.AddActor(n)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(g, text)
		if err != nil {
			return
		}
		printed := s.String()
		s2, err := Parse(g, printed)
		if err != nil {
			t.Fatalf("printed form %q (from %q) does not re-parse: %v", printed, text, err)
		}
		var f1, f2 []sdf.ActorID
		ok1 := s.ForEachFiring(func(a sdf.ActorID) bool {
			f1 = append(f1, a)
			return len(f1) < 10000
		})
		ok2 := s2.ForEachFiring(func(a sdf.ActorID) bool {
			f2 = append(f2, a)
			return len(f2) < 10000
		})
		if ok1 != ok2 || len(f1) != len(f2) {
			t.Fatalf("firing sequences diverge for %q -> %q", text, printed)
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("firing %d differs for %q -> %q", i, text, printed)
			}
		}
	})
}
