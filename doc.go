// Package repro is a from-scratch Go reproduction of "Shared Memory
// Implementations of Synchronous Dataflow Specifications Using Lifetime
// Analysis Techniques" (Murthy & Bhattacharyya, DATE 2000).
//
// The library compiles synchronous dataflow (SDF) graphs into shared-memory
// software implementations: it schedules the graph as a nested single
// appearance schedule (APGAN/RPMC ordering + DPPO/SDPPO loop nesting),
// extracts periodic buffer lifetimes from the schedule tree, and packs the
// buffers into one memory space with first-fit dynamic storage allocation —
// halving buffer memory on the paper's benchmark suite relative to
// per-edge buffers.
//
// Entry points:
//
//   - internal/core.Compile — the full Fig. 21 flow in one call.
//   - internal/experiments  — regenerates every table and figure of the
//     paper's evaluation.
//   - cmd/sdfc, cmd/sdfbench, cmd/sdfgen — command-line drivers.
//   - examples/ — five runnable walkthroughs.
//
// The benchmarks in bench_test.go regenerate each experiment under the Go
// testing harness; see EXPERIMENTS.md for paper-vs-measured results.
package repro
