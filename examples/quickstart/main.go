// Quickstart: build a small multirate SDF graph by hand, compile it with the
// shared-memory synthesis flow, and inspect every intermediate artifact —
// repetitions vector, lexical order, nested schedule, buffer lifetimes and
// the final packed memory layout.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lifetime"
	"repro/internal/sdf"
)

func main() {
	// A three-stage sample-rate converter: A produces 2 tokens per firing,
	// B converts 1-in to 1-out... rates chosen to give q = (3A, 6B, 2C).
	g := sdf.New("quickstart")
	a := g.AddActor("A")
	b := g.AddActor("B")
	c := g.AddActor("C")
	g.AddEdge(a, b, 2, 1, 0) // A -> B: produce 2, consume 1
	g.AddEdge(b, c, 1, 3, 0) // B -> C: produce 1, consume 3

	res, err := core.Compile(g, core.Options{
		Strategy: core.RPMC,       // lexical order by recursive min-cut
		Looping:  core.SDPPOLoops, // shared-model loop nesting
		Verify:   true,            // token-level simulation of the result
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("repetitions vector:")
	for _, actor := range g.Actors() {
		fmt.Printf("  q(%s) = %d\n", actor.Name, res.Repetitions[actor.ID])
	}

	fmt.Printf("\nnested single appearance schedule: %s\n", res.Schedule)
	fmt.Printf("schedule period: %d abstract time steps\n\n", res.Tree.TotalDur)

	fmt.Println("buffer lifetimes (coarse-grained model):")
	for _, iv := range res.Intervals {
		fmt.Printf("  %-8s size=%d live [%d,%d) periods=%v\n",
			iv.Name, iv.Size, iv.Start, iv.Start+iv.Dur, iv.Periods)
	}

	fmt.Println("\nlifetime chart (one column per schedule step):")
	fmt.Print(lifetime.Chart(res.Intervals, res.Tree.TotalDur, 72))

	fmt.Println("\nshared memory layout (first fit by duration):")
	for _, p := range res.Best.Placements {
		fmt.Printf("  cells [%3d,%3d) <- %s\n",
			p.Offset, p.Offset+p.Interval.Size, p.Interval.Name)
	}

	fmt.Printf("\ntotal shared memory : %d cells\n", res.Metrics.SharedTotal)
	fmt.Printf("non-shared (EQ 1)   : %d cells\n", res.Metrics.NonSharedBufMem)
	fmt.Printf("BMLB lower bound    : %d cells\n", res.Metrics.BMLB)
	fmt.Printf("verified by token-level simulation: yes\n")
}
