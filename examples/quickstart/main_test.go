package main

import (
	"testing"

	"repro/internal/goldentest"
)

// TestGolden pins the demo's full stdout: repetitions, schedule, lifetime
// chart and packed layout are all deterministic.
func TestGolden(t *testing.T) {
	out := goldentest.CaptureStdout(t, main)
	goldentest.Compare(t, "testdata/golden.txt", out)
}
