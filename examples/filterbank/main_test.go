package main

import (
	"testing"

	"repro/internal/goldentest"
)

func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("filterbank sweep compiles 16 systems; skipped under -short")
	}
	out := goldentest.CaptureStdout(t, main)
	goldentest.Compare(t, "testdata/golden.txt", out)
}
