// Filterbank: sweep the paper's multirate filterbank family (Table 1) over
// depth and rate-change ratios, comparing shared against non-shared buffer
// memory for both ordering heuristics — the workload class where the paper
// reports its largest gains (up to 83% on qmf12_5d).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sdf"
	"repro/internal/systems"
)

func main() {
	fmt.Println("two-sided multirate filterbanks: shared vs non-shared buffer memory")
	fmt.Printf("%-12s %6s | %10s %10s %7s\n", "system", "actors", "non-shared", "shared", "saved")
	for _, ratio := range []systems.Ratio{systems.Ratio12, systems.Ratio23, systems.Ratio235} {
		for depth := 1; depth <= 5; depth++ {
			g := systems.TwoSidedFilterbank(depth, ratio)
			nonShared, shared := best(g)
			fmt.Printf("%-12s %6d | %10d %10d %6.1f%%\n",
				g.Name, g.NumActors(), nonShared, shared,
				100*float64(nonShared-shared)/float64(nonShared))
		}
	}

	fmt.Println("\none-sided filterbank (Fig. 22):")
	g := systems.OneSidedFilterbank(4, systems.Ratio23)
	nonShared, shared := best(g)
	fmt.Printf("%-12s %6d | non-shared %d, shared %d\n",
		g.Name, g.NumActors(), nonShared, shared)
}

// best runs both ordering heuristics and returns the better non-shared
// bufmem and the better verified shared allocation.
func best(g *sdf.Graph) (nonShared, shared int64) {
	nonShared, shared = -1, -1
	for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
		ns, err := core.Compile(g, core.Options{Strategy: strat, Looping: core.DPPOLoops})
		if err != nil {
			log.Fatalf("%s: %v", g.Name, err)
		}
		sh, err := core.Compile(g, core.Options{Strategy: strat, Looping: core.SDPPOLoops, Verify: true})
		if err != nil {
			log.Fatalf("%s: %v", g.Name, err)
		}
		if nonShared < 0 || ns.Metrics.NonSharedBufMem < nonShared {
			nonShared = ns.Metrics.NonSharedBufMem
		}
		if shared < 0 || sh.Metrics.SharedTotal < shared {
			shared = sh.Metrics.SharedTotal
		}
	}
	return nonShared, shared
}
