// Homogeneous: the Fig. 26 graph family where lifetime-based sharing is most
// dramatic — M parallel chains of N unit-rate actors need only M+1 shared
// cells regardless of N, while per-edge buffers need M(N+1).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/systems"
)

func main() {
	fmt.Println("homogeneous M x N graphs (Fig. 26): shared allocation vs the M+1 bound")
	fmt.Printf("%4s %4s | %7s %6s %10s %9s\n", "M", "N", "shared", "M+1", "non-shared", "reduction")
	for _, m := range []int{2, 4, 8, 16} {
		for _, n := range []int{4, 16, 64} {
			g := systems.Homogeneous(m, n)
			best := int64(-1)
			for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
				res, err := core.Compile(g, core.Options{Strategy: strat, Verify: true})
				if err != nil {
					log.Fatalf("%s: %v", g.Name, err)
				}
				if best < 0 || res.Metrics.SharedTotal < best {
					best = res.Metrics.SharedTotal
				}
			}
			nonShared := int64(m*(n-1) + 2*m)
			fmt.Printf("%4d %4d | %7d %6d %10d %8.1f%%\n",
				m, n, best, m+1, nonShared,
				100*float64(nonShared-best)/float64(nonShared))
		}
	}
	fmt.Println("\nSavings grow without bound in N: the schedule pipelines one token")
	fmt.Println("down one chain at a time, so at most M+1 tokens are ever live.")

	// The paper: "the savings are even more dramatic if, along the
	// horizontal chains, vectors or matrices are being exchanged instead of
	// numerical tokens." Scale every token to a 64-word vector:
	const m, n, w = 4, 16, 64
	g := systems.Homogeneous(m, n)
	for _, e := range g.Edges() {
		g.SetWords(e.ID, w)
	}
	res, err := core.Compile(g, core.Options{Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith %d-word vector tokens (M=%d, N=%d):\n", w, m, n)
	fmt.Printf("  shared     : %6d words\n", res.Metrics.SharedTotal)
	fmt.Printf("  non-shared : %6d words (%d buffers x %d words)\n",
		res.Metrics.NonSharedBufMem, m*(n+1), w)
}
