package main

import (
	"testing"

	"repro/internal/goldentest"
)

func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("homogeneous sweep compiles up to 1024-actor graphs; skipped under -short")
	}
	out := goldentest.CaptureStdout(t, main)
	goldentest.Compare(t, "testdata/golden.txt", out)
}
