// FIR: the Sec. 12 regularity study. A fine-grained FIR filter is specified
// compactly with the higher-order Chain construct (Fig. 29), expanded into
// its gain/adder graph (Fig. 28), scheduled, and the schedule's instance
// labels are collapsed so the optimal looping DP recovers the compact
// G (n(G A)) loop a human would write — plus the shared-memory compilation
// of the same graph.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/regularity"
	"repro/internal/sched"
	"repro/internal/sdf"
)

func main() {
	const taps = 8
	g := regularity.FIR(taps)
	fmt.Printf("fine-grained FIR, %d taps: %d actors, %d edges (from one Chain spec)\n\n",
		taps, g.NumActors(), g.NumEdges())

	q, err := g.Repetitions()
	if err != nil {
		log.Fatal(err)
	}
	order, err := g.TopologicalSort(q)
	if err != nil {
		log.Fatal(err)
	}
	s := sched.FlatSAS(g, q, order)
	var names []string
	s.ForEachFiring(func(a sdf.ActorID) bool {
		names = append(names, g.Actor(a).Name)
		return true
	})
	fmt.Printf("flat schedule (%d appearances):\n  %v\n\n", len(names), names)

	labels := regularity.CollapseLabels(names)
	term := regularity.OptimalLooping(labels, 1)
	fmt.Printf("after instance collapsing + optimal looping (code size %d):\n  %s\n\n",
		term.Size(1), term)

	res, err := core.Compile(g, core.Options{Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared-memory compilation:\n")
	fmt.Printf("  non-shared buffers: %d cells\n", res.Metrics.NonSharedBufMem)
	fmt.Printf("  shared memory     : %d cells\n", res.Metrics.SharedTotal)
	fmt.Println("\nThe threading code generator would emit one loop body per class")
	fmt.Println("instead of", taps, "inlined MAC blocks (the paper's Fig. 28 critique).")
}
