package main

import (
	"testing"

	"repro/internal/goldentest"
)

func TestGolden(t *testing.T) {
	out := goldentest.CaptureStdout(t, main)
	goldentest.Compare(t, "testdata/golden.txt", out)
}
