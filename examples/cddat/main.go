// CDDAT: the CD-to-DAT (44.1 kHz -> 48 kHz) sample-rate converter of
// Sec. 11.1.3. Shows how loop nesting trades buffer memory AND real-time
// input buffering against a flat single appearance schedule, and compares
// static shared-memory synthesis against the bounds for dynamic scheduling.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/systems"
)

func main() {
	g := systems.CDDAT()
	q, err := g.Repetitions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CD-to-DAT rate converter (147 CD samples -> 160 DAT samples per period)")
	for _, a := range g.Actors() {
		fmt.Printf("  q(%-6s) = %3d\n", a.Name, q[a.ID])
	}

	fmt.Println("\nschedules:")
	for _, la := range []core.LoopAlg{core.FlatLoops, core.DPPOLoops, core.SDPPOLoops, core.ChainPreciseLoops} {
		res, err := core.Compile(g, core.Options{Strategy: core.APGAN, Looping: la, Verify: true})
		if err != nil {
			log.Fatal(err)
		}
		src, _ := g.ActorByName("cd")
		inBuf := experiments.InputBuffering(res.Schedule, q, src.ID)
		fmt.Printf("  %-12s bufmem=%5d shared=%5d inputBuf=%4d  %s\n",
			la, res.Metrics.NonSharedBufMem, res.Metrics.SharedTotal, inBuf, res.Schedule)
	}

	bmlb, err := g.BMLB()
	if err != nil {
		panic(err)
	}
	minAll, err := g.MinBufferAllSchedules()
	if err != nil {
		panic(err)
	}
	fmt.Println("\nlower bounds:")
	fmt.Printf("  BMLB (best over all SASs, non-shared)   : %d\n", bmlb)
	fmt.Printf("  min over ALL schedules (dynamic, greedy): %d\n", minAll)
	fmt.Println("\nThe nested schedules cut both total memory and the real-time input")
	fmt.Println("buffer (the paper's 65-vs-11 observation, Sec. 11.1.3).")

	fmt.Println("\npartitioned (beyond the paper's sequential scope):")
	seq, err := core.Compile(g, core.Options{Strategy: core.APGAN, Looping: core.SDPPOLoops})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		res, err := core.Compile(g, core.Options{
			Strategy: core.APGAN, Looping: core.SDPPOLoops, Partitions: p, Verify: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P=%d: %2d phases/period, %5d cells segmented (%.2fx the sequential %d)\n",
			res.Partition.P, res.Partition.NumPhases, res.Segmented.Total,
			float64(res.Segmented.Total)/float64(seq.Metrics.SharedTotal), seq.Metrics.SharedTotal)
	}
	fmt.Println("A 6-actor chain levels into long dependence chains, so extra workers")
	fmt.Println("buy little phase overlap — the memory ratio is the price to watch.")
}
