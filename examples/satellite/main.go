// Satellite: compile the Ritz et al. satellite receiver end to end and emit
// a complete C implementation of the shared-memory software synthesis result
// — the paper's flagship comparison system (Sec. 11).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/systems"
)

func main() {
	g := systems.SatelliteReceiver()
	res, err := core.Compile(g, core.Options{
		Strategy: core.APGAN, // the paper quotes the APGAN schedule for satrec
		Looping:  core.SDPPOLoops,
		Verify:   true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("satellite receiver: %d actors, %d edges\n", g.NumActors(), g.NumEdges())
	fmt.Printf("APGAN + SDPPO schedule:\n  %s\n", res.Schedule)
	fmt.Printf("(paper's APGAN schedule: (24(11(4A)B)CGHI(11(4D)E)FKLM10(NSJTUP))(QRV240W))\n\n")
	fmt.Printf("shared memory: %d cells  (paper: 991 on the authors' instance)\n", res.Metrics.SharedTotal)
	fmt.Printf("non-shared   : %d cells  (paper: 1542)\n", res.Metrics.NonSharedBufMem)
	fmt.Printf("mco / mcp    : %d / %d\n\n", res.Metrics.MCO, res.Metrics.MCP)

	out := "satrec_generated.c"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	src := codegen.GenerateC(res)
	if err := os.WriteFile(out, []byte(src), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes) — compile with: cc -std=c99 %s\n\n", out, len(src), out)

	// Beyond the paper's sequential scope: the same lexical order partitioned
	// onto two workers, executed phase by phase with a barrier between phases.
	par, err := core.Compile(g, core.Options{
		Strategy:   core.APGAN,
		Looping:    core.SDPPOLoops,
		Partitions: 2,
		Verify:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned (P=2): %d phases/period, loads %v\n",
		par.Partition.NumPhases, par.Partition.Load)
	fmt.Printf("segmented memory : %d cells (%.2fx the sequential %d — private\n",
		par.Segmented.Total,
		float64(par.Segmented.Total)/float64(res.Metrics.SharedTotal), res.Metrics.SharedTotal)
	fmt.Printf("                   segments forbid the cross-buffer overlaps the\n")
	fmt.Printf("                   sequential allocator exploits)\n")

	mtOut := "satrec_threaded.c"
	if len(os.Args) > 2 {
		mtOut = os.Args[2]
	}
	mt := codegen.GenerateThreadedC(par)
	if err := os.WriteFile(mtOut, []byte(mt), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes) — compile with: cc -std=c99 %s -lpthread\n", mtOut, len(mt), mtOut)
}
