package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/goldentest"
)

// TestGolden runs the demo with the generated C file redirected to a temp
// path (main reads os.Args[1], which in a test binary would otherwise be a
// test flag) and normalizes that path before the golden comparison.
func TestGolden(t *testing.T) {
	cfile := filepath.Join(t.TempDir(), "satrec.c")
	mtfile := filepath.Join(t.TempDir(), "satrec_mt.c")
	oldArgs := os.Args
	os.Args = []string{"satellite", cfile, mtfile}
	defer func() { os.Args = oldArgs }()

	out := goldentest.CaptureStdout(t, main)
	out = strings.ReplaceAll(out, cfile, "satrec_generated.c")
	out = strings.ReplaceAll(out, mtfile, "satrec_threaded.c")
	goldentest.Compare(t, "testdata/golden.txt", out)

	src, err := os.ReadFile(cfile)
	if err != nil {
		t.Fatalf("generated C file missing: %v", err)
	}
	for _, want := range []string{"#define MEM_SIZE", "int main(void)"} {
		if !strings.Contains(string(src), want) {
			t.Errorf("generated C lacks %q", want)
		}
	}

	mt, err := os.ReadFile(mtfile)
	if err != nil {
		t.Fatalf("generated threaded C file missing: %v", err)
	}
	for _, want := range []string{"#define WORKERS 2", "pthread_create", "barrier"} {
		if !strings.Contains(string(mt), want) {
			t.Errorf("generated threaded C lacks %q", want)
		}
	}
}
