package repro

// One benchmark per table and figure of the paper's evaluation section,
// plus micro-benchmarks for the individual pipeline phases. Run with
//
//	go test -bench=. -benchmem
//
// Populations are reduced under -short; cmd/sdfbench runs the full sizes.

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/apgan"
	"repro/internal/core"
	"repro/internal/dynsched"
	"repro/internal/experiments"
	"repro/internal/looping"
	"repro/internal/randsdf"
	"repro/internal/regularity"
	"repro/internal/rpmc"
	"repro/internal/sched"
	"repro/internal/schedtree"
	"repro/internal/sdf"
	"repro/internal/sim"
	"repro/internal/systems"
)

// BenchmarkTable1 regenerates Table 1 (and with it the Fig. 25 improvement
// series) over all sixteen practical systems.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DefaultTable1()
		if err != nil {
			b.Fatal(err)
		}
		if len(experiments.Fig25(rows)) != len(rows) {
			b.Fatal("fig25 series mismatch")
		}
	}
}

// BenchmarkTable1System reports the per-system cost of the full shared
// pipeline (ordering + sdppo + lifetimes + both first-fit allocations).
func BenchmarkTable1System(b *testing.B) {
	for _, g := range systems.Table1Systems() {
		b.Run(g.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table1([]*sdf.Graph{g}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig27 regenerates the random-graph study at each population size
// of Fig. 27 (10 graphs per size per iteration; the paper's 100 via
// cmd/sdfbench).
func BenchmarkFig27(b *testing.B) {
	sizes := []int{20, 50, 100, 150}
	if testing.Short() {
		sizes = []int{20, 50}
	}
	for _, size := range sizes {
		b.Run(benchName("nodes", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Fig27(experiments.Fig27Config{
					Sizes: []int{size}, PerSize: 10, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if pts[0].Graphs != 10 {
					b.Fatal("population mismatch")
				}
			}
		})
	}
}

// BenchmarkRandomTopsort reproduces the Sec. 10.1 random-search study on the
// satellite receiver (50 random sorts per iteration; the 1000-trial version
// runs in cmd/sdfbench).
func BenchmarkRandomTopsort(b *testing.B) {
	g := systems.SatelliteReceiver()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RandomSort(g, 50, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHomogeneous reproduces the Sec. 10.2 / Fig. 26 study.
func BenchmarkHomogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Homogeneous([]int{2, 4, 8}, []int{4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Shared > r.Expected {
				b.Fatalf("M=%d N=%d: %d > M+1", r.M, r.N, r.Shared)
			}
		}
	}
}

// BenchmarkSdppoVsDppo reproduces the Sec. 10.1 looping ablation.
func BenchmarkSdppoVsDppo(b *testing.B) {
	graphs := systems.Table1Systems()
	if testing.Short() {
		graphs = graphs[:4]
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SdppoVsDppo(graphs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSatrec reproduces the Sec. 11 satellite-receiver comparison.
func BenchmarkSatrec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.Satrec()
		if err != nil {
			b.Fatal(err)
		}
		if cmp.Shared >= cmp.NonShared {
			b.Fatal("no sharing benefit on satrec")
		}
	}
}

// BenchmarkCDDAT reproduces the Sec. 11.1.3 input-buffering comparison.
func BenchmarkCDDAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CDDAT()
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].InputBuffer >= rows[0].InputBuffer {
			b.Fatal("nested schedule lost its input-buffering advantage")
		}
	}
}

// ---- Component micro-benchmarks ----

func benchGraph(n int) *sdf.Graph {
	return randsdf.Graph(rand.New(rand.NewSource(int64(n))), randsdf.Config{Actors: n})
}

func BenchmarkRepetitions(b *testing.B) {
	g := systems.TwoSidedFilterbank(5, systems.Ratio235)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Repetitions(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPGAN(b *testing.B) {
	g := systems.TwoSidedFilterbank(4, systems.Ratio12)
	q, _ := g.Repetitions()
	for i := 0; i < b.N; i++ {
		if _, err := apgan.Run(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPMC(b *testing.B) {
	g := systems.TwoSidedFilterbank(4, systems.Ratio12)
	q, _ := g.Repetitions()
	for i := 0; i < b.N; i++ {
		if _, err := rpmc.Order(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDPPO(b *testing.B) {
	for _, n := range []int{20, 50, 100, 188} {
		b.Run(benchName("n", n), func(b *testing.B) {
			g := benchGraph(n)
			q, _ := g.Repetitions()
			order, _ := g.TopologicalSort(q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := looping.DPPO(g, q, order); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSDPPO(b *testing.B) {
	for _, n := range []int{20, 50, 100, 188} {
		b.Run(benchName("n", n), func(b *testing.B) {
			g := benchGraph(n)
			q, _ := g.Repetitions()
			order, _ := g.TopologicalSort(q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := looping.SDPPO(g, q, order); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChainSDPPO(b *testing.B) {
	g := systems.CDDAT()
	q, _ := g.Repetitions()
	order, _ := g.TopologicalSort(q)
	for i := 0; i < b.N; i++ {
		if _, err := looping.ChainSDPPO(g, q, order); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLifetimeExtraction(b *testing.B) {
	g := systems.TwoSidedFilterbank(5, systems.Ratio12)
	res, err := core.Compile(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q := res.Repetitions
	tree := res.Tree
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Lifetimes(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFirstFit(b *testing.B) {
	g := systems.TwoSidedFilterbank(5, systems.Ratio12)
	res, err := core.Compile(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alloc.Allocate(res.Intervals, strat)
			}
		})
	}
}

func BenchmarkEndToEndCompile(b *testing.B) {
	for _, g := range []*sdf.Graph{
		systems.SatelliteReceiver(),
		systems.TwoSidedFilterbank(3, systems.Ratio23),
	} {
		b.Run(g.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(g, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimulatorVerify(b *testing.B) {
	g := systems.SatelliteReceiver()
	res, err := core.Compile(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(res.Schedule, res.Repetitions, res.Intervals, res.Best, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleTree(b *testing.B) {
	g := systems.TwoSidedFilterbank(5, systems.Ratio12)
	res, err := core.Compile(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedtree.FromSchedule(res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkDynamicVsStatic reproduces the Sec. 11.1.3 static-vs-dynamic
// scheduling comparison.
func BenchmarkDynamicVsStatic(b *testing.B) {
	graphs := systems.Table1Systems()
	if testing.Short() {
		graphs = graphs[:4]
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DynamicVsStatic(graphs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.GreedyBufMem < r.AllSchedulesBound {
				b.Fatalf("%s: greedy below theoretical bound", r.System)
			}
		}
	}
}

// BenchmarkMerging reproduces the Sec. 12 buffer-merging ablation.
func BenchmarkMerging(b *testing.B) {
	graphs := systems.Table1Systems()
	if testing.Short() {
		graphs = graphs[:4]
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Merging(graphs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.SharedMerged > r.SharedBase {
				b.Fatalf("%s: merging regressed", r.System)
			}
		}
	}
}

// BenchmarkGreedyScheduler times the demand-driven scheduler alone.
func BenchmarkGreedyScheduler(b *testing.B) {
	g := systems.SatelliteReceiver()
	q, _ := g.Repetitions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dynsched.Schedule(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalLooping times the Sec. 12 loop-compaction DP on the
// collapsed FIR schedule.
func BenchmarkOptimalLooping(b *testing.B) {
	g := regularity.FIR(32)
	q, _ := g.Repetitions()
	order, _ := g.TopologicalSort(q)
	s := sched.FlatSAS(g, q, order)
	var names []string
	s.ForEachFiring(func(a sdf.ActorID) bool {
		names = append(names, g.Actor(a).Name)
		return true
	})
	labels := regularity.CollapseLabels(names)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		term := regularity.OptimalLooping(labels, 1)
		if term.Size(1) >= len(labels) {
			b.Fatal("no compression")
		}
	}
}

// BenchmarkTradeoff regenerates the code-size vs buffer-memory frontier.
func BenchmarkTradeoff(b *testing.B) {
	graphs := systems.Table1Systems()
	if testing.Short() {
		graphs = graphs[:4]
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Tradeoff(graphs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.SharedBuf > r.NestedBuf {
				b.Fatalf("%s: sharing regressed", r.System)
			}
		}
	}
}

// multirateBenchSystems are the Table 1 systems whose periods contain far
// more firings than schedule nodes — the regime the loop-aware simulator is
// built for (the acceptance target is ≥5x over firing expansion here).
func multirateBenchSystems() []*sdf.Graph {
	return []*sdf.Graph{
		systems.SatelliteReceiver(),
		systems.TwoSidedFilterbank(5, systems.Ratio235),
		systems.PhasedArray(),
		systems.CDDAT(),
	}
}

// BenchmarkMaxTokensLoopAware times the loop-aware max_tokens/bufmem
// recursion on the compiled SDPPO schedules of the multirate systems.
func BenchmarkMaxTokensLoopAware(b *testing.B) {
	for _, g := range multirateBenchSystems() {
		res, err := core.Compile(g, core.Options{Strategy: core.APGAN, Looping: core.SDPPOLoops})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(g.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := res.Schedule.SimulateLoopAware(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxTokensFiring times the firing-expansion reference oracle on
// the same schedules, for direct comparison with the loop-aware path.
func BenchmarkMaxTokensFiring(b *testing.B) {
	for _, g := range multirateBenchSystems() {
		res, err := core.Compile(g, core.Options{Strategy: core.APGAN, Looping: core.SDPPOLoops})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(g.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := res.Schedule.SimulateByExpansion(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocateFirstFit times first-fit packing on a large random
// instance (the scratch-reuse and sorted-insertion fast path in
// alloc.Allocate).
func BenchmarkAllocateFirstFit(b *testing.B) {
	g := benchGraph(150)
	res, err := core.Compile(g, core.Options{Strategy: core.APGAN, Looping: core.SDPPOLoops})
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart} {
		b.Run(strat.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				alloc.Allocate(res.Intervals, strat)
			}
		})
	}
}

// BenchmarkExactStudy regenerates the heuristics-vs-exhaustive-optimum
// comparison on small graphs.
func BenchmarkExactStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExactStudy(
			[]*sdf.Graph{systems.OverAddFFT()}, 8, 50_000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.APGANNS < r.ExactNS {
				b.Fatal("heuristic beat the exact optimum")
			}
		}
	}
}
