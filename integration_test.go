package repro

// Repository-wide integration tests: every benchmark system must compile
// through the complete pipeline with token-level verification under every
// ordering strategy, and the extension paths (merging, cyclic graphs,
// runtime execution, code generation) must compose.

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/regularity"
	"repro/internal/runtime"
	"repro/internal/sdf"
	"repro/internal/systems"
)

func allSystems() []*sdf.Graph {
	gs := systems.Table1Systems()
	gs = append(gs, systems.CDDAT(), systems.Homogeneous(4, 6),
		systems.EchoCanceller(), regularity.FIR(6))
	return gs
}

func TestEverySystemCompilesVerified(t *testing.T) {
	for _, g := range allSystems() {
		for _, strat := range []core.OrderStrategy{core.RPMC, core.APGAN} {
			res, err := core.CompileGeneral(g, core.Options{
				Strategy: strat,
				Verify:   true,
			})
			if err != nil {
				t.Errorf("%s/%v: %v", g.Name, strat, err)
				continue
			}
			if res.Metrics.SharedTotal <= 0 {
				t.Errorf("%s/%v: empty allocation", g.Name, strat)
			}
			if res.Metrics.SharedTotal > res.Metrics.NonSharedBufMem {
				t.Errorf("%s/%v: shared %d above non-shared %d",
					g.Name, strat, res.Metrics.SharedTotal, res.Metrics.NonSharedBufMem)
			}
		}
	}
}

func TestEverySystemGeneratesCode(t *testing.T) {
	for _, g := range allSystems() {
		res, err := core.CompileGeneral(g, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		c := codegen.GenerateC(res)
		if !strings.Contains(c, "int main(void)") ||
			strings.Count(c, "{") != strings.Count(c, "}") {
			t.Errorf("%s: malformed C", g.Name)
		}
		v := codegen.GenerateVHDL(res)
		if !strings.Contains(v, "end architecture behavioral;") {
			t.Errorf("%s: malformed VHDL", g.Name)
		}
	}
}

func TestEverySystemExecutesInRuntime(t *testing.T) {
	for _, g := range allSystems() {
		res, err := core.CompileGeneral(g, core.Options{Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		eng, err := runtime.New(res, nil)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for p := 0; p < 2; p++ {
			if err := eng.RunPeriod(); err != nil {
				t.Fatalf("%s period %d: %v", g.Name, p, err)
				break
			}
		}
	}
}

func TestMergingNeverRegressesAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation-aware merging over the full suite is slow")
	}
	for _, g := range allSystems() {
		res, err := core.CompileGeneral(g, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		_ = res
		// Merging is only defined on the acyclic (SAS) path.
		q, err := g.Repetitions()
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsAcyclic(q) {
			continue
		}
		m, err := core.Compile(g, core.Options{Merging: true})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if m.Metrics.MergedTotal > m.Metrics.SharedTotal {
			t.Errorf("%s: merging regressed %d -> %d",
				g.Name, m.Metrics.SharedTotal, m.Metrics.MergedTotal)
		}
	}
}
