package repro

// Differential tests for the loop-aware token simulator: on every graph the
// repo can produce — the sixteen Table 1 systems, the graphs demoed under
// examples/, and a population of random SDF graphs with delay-carrying
// edges — the closed-form recursion must agree with the firing-expansion
// oracle on every max_tokens, final-token, and firing count, and BufMem
// (EQ 1) must equal the total recomputed from the oracle.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/randsdf"
	"repro/internal/regularity"
	"repro/internal/sched"
	"repro/internal/sdf"
	"repro/internal/systems"
)

// diffCheck compiles the graph under the given options and cross-checks the
// three simulators on the resulting schedule.
func diffCheck(t *testing.T, g *sdf.Graph, opts core.Options, label string) {
	t.Helper()
	res, err := core.Compile(g, opts)
	if err != nil {
		t.Fatalf("%s: compile: %v", label, err)
	}
	s := res.Schedule
	fast, fastErr := s.SimulateLoopAware()
	slow, slowErr := s.SimulateByExpansion()
	if (fastErr == nil) != (slowErr == nil) {
		t.Fatalf("%s: loop-aware err=%v, oracle err=%v", label, fastErr, slowErr)
	}
	if fastErr != nil {
		return
	}
	disp, dispErr := s.Simulate()
	if dispErr != nil {
		t.Fatalf("%s: Simulate: %v", label, dispErr)
	}
	for e := range slow.MaxTokens {
		if fast.MaxTokens[e] != slow.MaxTokens[e] {
			t.Errorf("%s: max_tokens(edge %d) = %d, oracle %d", label, e, fast.MaxTokens[e], slow.MaxTokens[e])
		}
		if fast.FinalTokens[e] != slow.FinalTokens[e] {
			t.Errorf("%s: final(edge %d) = %d, oracle %d", label, e, fast.FinalTokens[e], slow.FinalTokens[e])
		}
		if disp.MaxTokens[e] != slow.MaxTokens[e] {
			t.Errorf("%s: dispatched max_tokens(edge %d) = %d, oracle %d", label, e, disp.MaxTokens[e], slow.MaxTokens[e])
		}
	}
	for a := range slow.Firings {
		if fast.Firings[a] != slow.Firings[a] {
			t.Errorf("%s: firings(%d) = %d, oracle %d", label, a, fast.Firings[a], slow.Firings[a])
		}
	}
	got, err := s.BufMem()
	if err != nil {
		t.Fatalf("%s: BufMem: %v", label, err)
	}
	var want int64
	for _, e := range g.Edges() {
		want += slow.MaxTokens[e.ID] * e.Words
	}
	if got != want {
		t.Errorf("%s: BufMem = %d, oracle total %d", label, got, want)
	}
}

// diffOptions are the pipeline variants exercised per fixed graph, covering
// both order heuristics and all three looping modes.
func diffOptions() []core.Options {
	return []core.Options{
		{Strategy: core.APGAN, Looping: core.SDPPOLoops},
		{Strategy: core.APGAN, Looping: core.DPPOLoops},
		{Strategy: core.APGAN, Looping: core.FlatLoops},
		{Strategy: core.RPMC, Looping: core.SDPPOLoops},
		{Strategy: core.RPMC, Looping: core.DPPOLoops},
	}
}

// TestDifferentialTable1 covers all sixteen practical systems of Table 1.
func TestDifferentialTable1(t *testing.T) {
	for _, g := range systems.Table1Systems() {
		for _, opts := range diffOptions() {
			diffCheck(t, g, opts, fmt.Sprintf("%s/%v/%v", g.Name, opts.Strategy, opts.Looping))
		}
	}
}

// TestDifferentialExamples covers the graphs the examples/ programs build.
func TestDifferentialExamples(t *testing.T) {
	graphs := []*sdf.Graph{
		systems.CDDAT(),
		systems.SatelliteReceiver(),
		systems.Homogeneous(3, 4),
		systems.Homogeneous(8, 16),
		systems.OneSidedFilterbank(4, systems.Ratio23),
		systems.TwoSidedFilterbank(3, systems.Ratio12),
		regularity.FIR(16),
	}
	for _, g := range graphs {
		for _, opts := range diffOptions() {
			diffCheck(t, g, opts, fmt.Sprintf("%s/%v/%v", g.Name, opts.Strategy, opts.Looping))
		}
	}
}

// TestDifferentialRandom fuzzes the comparison over 200 random graphs,
// including delay-carrying edges, alternating between the two order
// heuristics.
func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 200
	if testing.Short() {
		trials = 40
	}
	for i := 0; i < trials; i++ {
		g := randsdf.Graph(rng, randsdf.Config{
			Actors:    3 + rng.Intn(18),
			DelayProb: 0.4,
		})
		opts := core.Options{Strategy: core.APGAN, Looping: core.SDPPOLoops}
		if i%2 == 1 {
			opts.Strategy = core.RPMC
		}
		if i%5 == 0 {
			opts.Looping = core.DPPOLoops
		}
		diffCheck(t, g, opts, fmt.Sprintf("rand%d/%v/%v", i, opts.Strategy, opts.Looping))
	}
}

// TestDifferentialFlatVsNested pins the equivalence on a hand-built deeply
// nested schedule whose expansion is still tractable, so a miscounted loop
// boundary cannot hide behind compiler-produced shapes.
func TestDifferentialFlatVsNested(t *testing.T) {
	g := systems.CDDAT()
	q, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopologicalSort(q)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.FlatSAS(g, q, order)
	fast, err := s.SimulateLoopAware()
	if err != nil {
		t.Fatal(err)
	}
	slow, err := s.SimulateByExpansion()
	if err != nil {
		t.Fatal(err)
	}
	for e := range slow.MaxTokens {
		if fast.MaxTokens[e] != slow.MaxTokens[e] {
			t.Errorf("flat SAS: max_tokens(edge %d) = %d, oracle %d", e, fast.MaxTokens[e], slow.MaxTokens[e])
		}
	}
}
