GO ?= go
FUZZTIME ?= 30s

.PHONY: all build vet lint lint-fast test race race-full race-service grid incremental cluster parallel tier1 bench bench-json fuzz-short serve load load-short bench-compare

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is the static gate: the repo-specific analyzers (docs/LINTING.md),
# go vet, and gofmt cleanliness.
lint: vet
	$(GO) run ./cmd/sdflint ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# lint-fast is the inner-loop variant: per-package analyzers only, skipping
# the module-wide interprocedural pass (callgraph + summaries) for speed.
lint-fast:
	$(GO) run ./cmd/sdflint -fast ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# race-full runs the concurrency-heavy packages under the race detector
# without -short (parallel experiment driver, oracle, fuzz harness).
race-full:
	$(GO) test -race ./internal/par/... ./internal/experiments/... ./internal/check/...

# race-service exercises the sdfd daemon stack (singleflight, cache,
# admission pool) under the race detector.
race-service:
	$(GO) test -race -count=2 ./internal/service/...

# grid validates the prefix-sharing plan executor: the planner-vs-direct
# differential property test under the race detector, plus the fuzzer's
# planner-path grid sweep over random graphs and the crasher corpus.
grid:
	$(GO) test -race -run 'TestPlan|TestPlannerDifferential|TestGrid' ./internal/pass/... ./internal/service/...
	$(GO) run ./cmd/sdffuzz -n 50 -seed 1
	cd cmd/sdffuzz && $(GO) run . -corpus

# incremental validates the persistent pass-node store: the 200-edit
# store-vs-cold differential property test and the store/durability suites
# under the race detector, plus the fuzzer's two-pass shared-store replay
# (second pass must be byte-identical with nonzero store hits).
incremental:
	$(GO) test -race -run 'TestStore|TestNodeStore|TestCodec|TestKind|TestDecode|TestPlanSecondRun|TestPlanGarbage' ./internal/pass/... ./internal/service/...
	$(GO) test -race -count=2 ./internal/nodestore/...
	cd cmd/sdffuzz && $(GO) run . -store -n 25 -seed 1

# parallel validates the partitioned runtime under the race detector: the
# partition/segment suites (including the 200-graph phased-vs-sequential
# differential), the barrier and phased-engine packages (real worker
# goroutines every period), the partition invariant oracles, and the
# fuzzer's partitioned grid sweep with its P=1 byte-identity check.
parallel:
	$(GO) test -race ./internal/partition/... ./internal/par/... ./internal/runtime/... ./internal/sim/...
	$(GO) test -race -run 'TestPartition|TestPhased|TestCorrupted|TestThreaded|TestPipelineCleanPartitioned' ./internal/check/...
	$(GO) run ./cmd/sdffuzz -n 50 -seed 2

# cluster is the sharded-daemon gate: the ring/peer-fetch/job/drain suites
# under the race detector (service + cluster packages), then a real 3-node
# cluster on local ports driven end to end — differential replay through
# every peer with cross-peer artifact fetch, a multi-target load smoke with
# per-peer accounting, and a graceful drain of one node.
cluster:
	$(GO) test -race -run 'TestCluster|TestJob|TestDrain' -count=2 ./internal/service/...
	$(GO) test -race -count=2 ./internal/cluster/...
	$(GO) build -o bin/sdfd ./cmd/sdfd
	$(GO) build -o bin/sdffuzz ./cmd/sdffuzz
	$(GO) build -o bin/sdfload ./cmd/sdfload
	./scripts/cluster-smoke.sh

# serve runs the compilation daemon on its default port.
serve:
	$(GO) run ./cmd/sdfd

# load-short is the saturation-harness smoke gate: the harness's unit and
# property suites under the race detector, then a real sdfload ramp against
# a race-enabled sdfd spawned on an ephemeral port, with -selfcheck gating
# on the open-loop invariants (monotone percentiles, every request accounted
# for, zero unclassified errors below the knee). Finally the written report
# must self-compare clean through sdfbench -compare.
load-short:
	$(GO) test -race ./internal/load/... ./internal/hdr/...
	$(GO) build -race -o bin/sdfd.race ./cmd/sdfd
	$(GO) build -o bin/sdfload ./cmd/sdfload
	./bin/sdfload -spawn ./bin/sdfd.race -short -selfcheck -label short -out LOAD_short.json
	$(GO) run ./cmd/sdfbench -compare LOAD_short.json LOAD_short.json >/dev/null

# load runs the full staged ramp against a locally spawned release-build
# sdfd and writes LOAD_dev.json (tune with LOAD_FLAGS, e.g.
# LOAD_FLAGS="-start-rps 100 -step-rps 100 -steps 10 -hold 15s").
LOAD_FLAGS ?=
load:
	$(GO) build -o bin/sdfd ./cmd/sdfd
	$(GO) build -o bin/sdfload ./cmd/sdfload
	./bin/sdfload -spawn ./bin/sdfd -selfcheck $(LOAD_FLAGS)

# bench-compare diffs a fresh quick trajectory against the committed
# baseline and fails on regressions beyond the (generous, cross-machine)
# threshold. BASELINE defaults to the checked-in file.
BASELINE ?= BENCH_2026-08-06.json
bench-compare:
	$(GO) run ./cmd/sdfbench -quick -json -out BENCH_ci.json >/dev/null
	$(GO) run ./cmd/sdfbench -compare -threshold 5 $(BASELINE) BENCH_ci.json

# tier1 is the merge gate: everything must pass before a change lands.
tier1: lint build test race

bench:
	$(GO) test -bench=. -benchmem -short ./...

# bench-json writes the BENCH_<date>.json performance trajectory file.
bench-json:
	$(GO) run ./cmd/sdfbench -quick -json >/dev/null

# fuzz-short gives every native fuzz target a bounded budget (FUZZTIME per
# target) on top of the checked-in corpora — the same loop CI runs.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/sched
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/sdfio
	$(GO) test -run='^$$' -fuzz=FuzzPipeline -fuzztime=$(FUZZTIME) ./internal/check
