package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/check"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/service"
)

// daemonReplay drives the crasher corpus (plus n fresh random graphs) through
// one or more running sdfd daemons and asserts, for every (graph,
// configuration) pair, that the daemon's artifact bytes are identical to what
// the in-process pipeline produces. Both sides render through
// service.CompileArtifact, so any divergence means the daemon cache,
// singleflight, or cluster routing layer corrupted a result — exactly the bug
// class a differential fuzzer is for.
//
// With a comma-separated address list the replay becomes a cluster
// differential: comparisons round-robin over the peers (so every node serves
// requests it does not own and must proxy or peer-fetch), and each identical
// artifact is additionally re-fetched by digest from a *different* peer,
// asserting the content-addressed bytes are one sequence cluster-wide.
//
// Returns the number of divergences found.
func daemonReplay(addrList string, f *fuzzer, n int) int {
	var clients []*service.Client
	for _, addr := range strings.Split(addrList, ",") {
		if addr = strings.TrimSpace(addr); addr == "" {
			continue
		}
		c := &service.Client{BaseURL: addr}
		if err := c.Healthz(); err != nil {
			fmt.Fprintf(os.Stderr, "sdffuzz: daemon %s unreachable: %v\n", addr, err)
			return 1
		}
		clients = append(clients, c)
	}
	if len(clients) == 0 {
		fmt.Fprintln(os.Stderr, "sdffuzz: -daemon needs at least one address")
		return 1
	}
	graphs := corpusGraphs(f.crashDir)
	fmt.Printf("sdffuzz: replaying %d corpus graphs + %d random graphs against %d daemon(s) at %s\n",
		len(graphs), n, len(clients), addrList)
	for i := 0; i < n; i++ {
		graphs = append(graphs, f.randomGraph())
	}

	opts := wireConfigs(f.configs)
	divergences, skipped, compared, crossFetched := 0, 0, 0, 0
	turn := 0
	for _, g := range graphs {
		for _, o := range opts {
			serving := clients[turn%len(clients)]
			turn++
			resp, ok, skip, err := compareOnce(serving, g, o)
			switch {
			case err != nil:
				divergences++
				fmt.Fprintf(os.Stderr, "sdffuzz: DIVERGENCE [%s+%s] on %s via %s: %v\n",
					o.Strategy, o.Looping, g.Name, serving.BaseURL, err)
				continue
			case skip:
				skipped++
				continue
			case ok:
				compared++
			}
			if len(clients) > 1 {
				// Cross-fetch: a different peer must serve the same digest as
				// the same bytes, whether from its own cache, a peer fetch, or
				// a recompile — content addressing admits exactly one answer.
				other := clients[turn%len(clients)]
				got, err := other.Artifact(resp.Digest)
				if err != nil {
					divergences++
					fmt.Fprintf(os.Stderr, "sdffuzz: DIVERGENCE cross-fetching %s from %s: %v\n",
						resp.Digest, other.BaseURL, err)
					continue
				}
				if string(got) != string(resp.Artifact) {
					divergences++
					fmt.Fprintf(os.Stderr, "sdffuzz: DIVERGENCE %s: peer %s returned different bytes than %s\n",
						resp.Digest, other.BaseURL, serving.BaseURL)
					continue
				}
				crossFetched++
			}
		}
	}
	if len(clients) > 1 {
		fmt.Printf("sdffuzz: %d comparisons identical (%d cross-fetched), %d overflow skips, %d divergences\n",
			compared, crossFetched, skipped, divergences)
	} else {
		fmt.Printf("sdffuzz: %d comparisons identical, %d overflow skips, %d divergences\n",
			compared, skipped, divergences)
	}
	return divergences
}

// corpusGraphs loads every .sdf reproducer in the crasher directory, sorted
// by name for a deterministic replay order.
func corpusGraphs(dir string) []*sdf.Graph {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".sdf") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var graphs []*sdf.Graph
	for _, name := range names {
		fh, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdffuzz: %v\n", err)
			continue
		}
		g, err := sdfio.Parse(fh)
		fh.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdffuzz: %s: %v\n", name, err)
			continue
		}
		graphs = append(graphs, g)
	}
	return graphs
}

// wireConfigs translates the oracle grid into wire options via the canonical
// spelling functions, so the replay sweeps exactly the configurations the
// offline fuzzer does.
func wireConfigs(configs []check.PipelineConfig) []service.CompileOptions {
	var out []service.CompileOptions
	for _, cfg := range configs {
		strat, err := service.StrategyName(cfg.Strategy)
		if err != nil {
			continue // custom orders are library-only
		}
		looping, err := service.LoopingName(cfg.Looping)
		if err != nil {
			continue
		}
		var allocators []string
		for _, a := range cfg.Allocators {
			name, err := service.AllocatorName(a)
			if err != nil {
				continue
			}
			allocators = append(allocators, name)
		}
		out = append(out, service.CompileOptions{
			Strategy: strat, Looping: looping, Allocators: allocators,
			Partitions: cfg.Partitions,
		})
	}
	return out
}

// compareOnce compiles g under o both in-process and via the daemon and
// compares outcomes. ok reports a byte-identical success pair (resp carries
// the daemon's artifact for follow-up cross-fetches), skip an agreed-on
// failure (overflow on extreme random rates shows up on both sides); err is
// a divergence: exactly one side failed, or bytes differ.
func compareOnce(client *service.Client, g *sdf.Graph, o service.CompileOptions) (resp *service.CompileResponse, ok, skip bool, err error) {
	// Round-trip through the canonical text so both sides compile the
	// graph the daemon actually parses.
	text, err := sdfio.CanonicalString(g)
	if err != nil {
		return nil, false, true, nil // unservable graph (e.g. zero edges)
	}
	local, err := sdfio.Parse(strings.NewReader(text))
	if err != nil {
		return nil, false, false, fmt.Errorf("canonical text does not re-parse: %w", err)
	}
	want, _, localErr := service.CompileArtifact(local, o)
	resp, remoteErr := client.Compile(service.CompileRequest{Graph: text, Options: o}, false)
	switch {
	case localErr != nil && remoteErr != nil:
		return nil, false, true, nil
	case localErr != nil:
		return nil, false, false, fmt.Errorf("daemon succeeded where local pipeline failed: %v", localErr)
	case remoteErr != nil:
		return nil, false, false, fmt.Errorf("daemon failed where local pipeline succeeded: %v", remoteErr)
	case string(want) != string(resp.Artifact):
		return nil, false, false, fmt.Errorf("artifact bytes differ (digest %s)", resp.Digest)
	}
	return resp, true, false, nil
}

// newReplayFuzzer builds the fuzzer state daemonReplay needs without the
// crash-reporting machinery.
func newReplayFuzzer(seed int64, maxActors int, crashDir string) *fuzzer {
	return &fuzzer{
		rng:       rand.New(rand.NewSource(seed)),
		maxActors: maxActors,
		crashDir:  crashDir,
		configs:   check.PipelineConfigs(),
		seen:      make(map[string]bool),
	}
}
