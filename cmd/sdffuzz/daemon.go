package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/check"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/service"
)

// daemonReplay drives the crasher corpus (plus n fresh random graphs) through
// a running sdfd daemon and asserts, for every (graph, configuration) pair,
// that the daemon's artifact bytes are identical to what the in-process
// pipeline produces. Both sides render through service.CompileArtifact, so
// any divergence means the daemon cache or singleflight layer corrupted a
// result — exactly the bug class a differential fuzzer is for.
//
// Returns the number of divergences found.
func daemonReplay(addr string, f *fuzzer, n int) int {
	client := &service.Client{BaseURL: addr}
	if err := client.Healthz(); err != nil {
		fmt.Fprintf(os.Stderr, "sdffuzz: daemon %s unreachable: %v\n", addr, err)
		return 1
	}
	graphs := corpusGraphs(f.crashDir)
	fmt.Printf("sdffuzz: replaying %d corpus graphs + %d random graphs against %s\n",
		len(graphs), n, addr)
	for i := 0; i < n; i++ {
		graphs = append(graphs, f.randomGraph())
	}

	opts := wireConfigs(f.configs)
	divergences, skipped, compared := 0, 0, 0
	for _, g := range graphs {
		for _, o := range opts {
			switch ok, skip, err := compareOnce(client, g, o); {
			case err != nil:
				divergences++
				fmt.Fprintf(os.Stderr, "sdffuzz: DIVERGENCE [%s+%s] on %s: %v\n",
					o.Strategy, o.Looping, g.Name, err)
			case skip:
				skipped++
			case ok:
				compared++
			}
		}
	}
	fmt.Printf("sdffuzz: %d comparisons identical, %d overflow skips, %d divergences\n",
		compared, skipped, divergences)
	return divergences
}

// corpusGraphs loads every .sdf reproducer in the crasher directory, sorted
// by name for a deterministic replay order.
func corpusGraphs(dir string) []*sdf.Graph {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".sdf") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var graphs []*sdf.Graph
	for _, name := range names {
		fh, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdffuzz: %v\n", err)
			continue
		}
		g, err := sdfio.Parse(fh)
		fh.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdffuzz: %s: %v\n", name, err)
			continue
		}
		graphs = append(graphs, g)
	}
	return graphs
}

// wireConfigs translates the oracle grid into wire options via the canonical
// spelling functions, so the replay sweeps exactly the configurations the
// offline fuzzer does.
func wireConfigs(configs []check.PipelineConfig) []service.CompileOptions {
	var out []service.CompileOptions
	for _, cfg := range configs {
		strat, err := service.StrategyName(cfg.Strategy)
		if err != nil {
			continue // custom orders are library-only
		}
		looping, err := service.LoopingName(cfg.Looping)
		if err != nil {
			continue
		}
		var allocators []string
		for _, a := range cfg.Allocators {
			name, err := service.AllocatorName(a)
			if err != nil {
				continue
			}
			allocators = append(allocators, name)
		}
		out = append(out, service.CompileOptions{
			Strategy: strat, Looping: looping, Allocators: allocators,
		})
	}
	return out
}

// compareOnce compiles g under o both in-process and via the daemon and
// compares outcomes. ok reports a byte-identical success pair, skip an
// agreed-on failure (overflow on extreme random rates shows up on both
// sides); err is a divergence: exactly one side failed, or bytes differ.
func compareOnce(client *service.Client, g *sdf.Graph, o service.CompileOptions) (ok, skip bool, err error) {
	// Round-trip through the canonical text so both sides compile the
	// graph the daemon actually parses.
	text, err := sdfio.CanonicalString(g)
	if err != nil {
		return false, true, nil // unservable graph (e.g. zero edges)
	}
	local, err := sdfio.Parse(strings.NewReader(text))
	if err != nil {
		return false, false, fmt.Errorf("canonical text does not re-parse: %w", err)
	}
	want, _, localErr := service.CompileArtifact(local, o)
	resp, remoteErr := client.Compile(service.CompileRequest{Graph: text, Options: o}, false)
	switch {
	case localErr != nil && remoteErr != nil:
		return false, true, nil
	case localErr != nil:
		return false, false, fmt.Errorf("daemon succeeded where local pipeline failed: %v", localErr)
	case remoteErr != nil:
		return false, false, fmt.Errorf("daemon failed where local pipeline succeeded: %v", remoteErr)
	case string(want) != string(resp.Artifact):
		return false, false, fmt.Errorf("artifact bytes differ (digest %s)", resp.Digest)
	}
	return true, false, nil
}

// newReplayFuzzer builds the fuzzer state daemonReplay needs without the
// crash-reporting machinery.
func newReplayFuzzer(seed int64, maxActors int, crashDir string) *fuzzer {
	return &fuzzer{
		rng:       rand.New(rand.NewSource(seed)),
		maxActors: maxActors,
		crashDir:  crashDir,
		configs:   check.PipelineConfigs(),
		seen:      make(map[string]bool),
	}
}
