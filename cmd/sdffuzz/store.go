package main

// sdffuzz -store: the persistent pass-node store regression sweep. The
// whole crasher corpus — every graph that ever broke the pipeline — is
// compiled twice across the full configuration grid through ONE shared
// on-disk store: the first pass populates it, the second pass must load
// what the first stored and still produce byte-identical artifacts. Any
// divergence means a store key is too coarse (two different computations
// aliased) or a codec lost information; either would silently poison
// every store-assisted compilation, so this gate runs in CI.

import (
	"context"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/nodestore"
	"repro/internal/pass"
	"repro/internal/sdf"
	"repro/internal/service"
)

// storePoint pairs a plan grid point with its wire spelling (needed to
// render artifact bytes exactly as /v1/compile would).
type storePoint struct {
	popt pass.Options
	wopt service.CompileOptions
}

// storePoints translates the oracle grid, skipping configurations the wire
// format cannot express (custom orders are library-only).
func storePoints(configs []check.PipelineConfig) []storePoint {
	var out []storePoint
	for _, cfg := range configs {
		strat, err := service.StrategyName(cfg.Strategy)
		if err != nil {
			continue
		}
		looping, err := service.LoopingName(cfg.Looping)
		if err != nil {
			continue
		}
		var allocators []string
		for _, a := range cfg.Allocators {
			name, err := service.AllocatorName(a)
			if err != nil {
				continue
			}
			allocators = append(allocators, name)
		}
		out = append(out, storePoint{
			popt: cfg.Options(),
			wopt: service.CompileOptions{Strategy: strat, Looping: looping, Allocators: allocators, Partitions: cfg.Partitions},
		})
	}
	return out
}

// renderSweep compiles every corpus graph across points through st and
// renders each outcome: artifact bytes on success, the error text
// otherwise (failures must be stable across passes too).
func renderSweep(graphs []*sdf.Graph, points []storePoint, st *nodestore.Store) ([][]string, error) {
	popts := make([]pass.Options, len(points))
	for i, pt := range points {
		popts[i] = pt.popt
	}
	out := make([][]string, len(graphs))
	for gi, g := range graphs {
		out[gi] = make([]string, len(points))
		outs, err := pass.RunGridOutcomes(context.Background(), g, popts, pass.PlanConfig{Store: st})
		if err != nil {
			for ci := range points {
				out[gi][ci] = "plan error: " + err.Error()
			}
			continue
		}
		for ci, o := range outs {
			if o.Err != nil {
				out[gi][ci] = "compile error: " + o.Err.Error()
				continue
			}
			data, err := service.ArtifactBytes(o.Result, points[ci].wopt)
			if err != nil {
				return nil, fmt.Errorf("%s config %d: rendering artifact: %w", g.Name, ci, err)
			}
			out[gi][ci] = string(data)
		}
	}
	return out, nil
}

// storeReplay runs the two-pass sweep over the crasher corpus plus n fresh
// random graphs (the corpus is empty on a healthy tree, so the generated
// graphs keep the gate meaningful). Returns the process exit code: 0 when
// the second pass is byte-identical with nonzero store hits, 1 on any
// divergence.
func storeReplay(f *fuzzer, n int) int {
	graphs := corpusGraphs(f.crashDir)
	fmt.Printf("sdffuzz: store replay over %d corpus graphs + %d random graphs\n", len(graphs), n)
	for i := 0; i < n; i++ {
		graphs = append(graphs, f.randomGraph())
	}
	if len(graphs) == 0 {
		fmt.Println("sdffuzz: nothing to replay (-n 0 and empty corpus)")
		return 0
	}
	points := storePoints(check.PipelineConfigs())
	tmp, err := os.MkdirTemp("", "sdffuzz-store-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdffuzz:", err)
		return 1
	}
	defer os.RemoveAll(tmp)
	st, err := nodestore.Open(tmp, 256<<20)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdffuzz:", err)
		return 1
	}

	first, err := renderSweep(graphs, points, st)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdffuzz:", err)
		return 1
	}
	second, err := renderSweep(graphs, points, st)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdffuzz:", err)
		return 1
	}

	code := 0
	diverged := 0
	for gi := range graphs {
		for ci := range points {
			if first[gi][ci] != second[gi][ci] {
				diverged++
				code = 1
				fmt.Fprintf(os.Stderr, "sdffuzz: STORE DIVERGENCE %s config %d:\n  cold: %.200s\n  warm: %.200s\n",
					graphs[gi].Name, ci, first[gi][ci], second[gi][ci])
			}
		}
	}
	stats := st.Stats()
	if stats.Hits == 0 {
		code = 1
		fmt.Fprintln(os.Stderr, "sdffuzz: second pass never hit the store; incremental reuse is broken")
	}
	fmt.Printf("sdffuzz: store replay: %d divergences, store %+v\n", diverged, stats)
	return code
}
