package main

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/randsdf"
	"repro/internal/sdf"
	"repro/internal/sdfio"
)

// buildChain makes A -p->c- B -p->c- ... with the given per-hop rates.
func buildChain(t *testing.T, hops [][3]int64) *sdf.Graph {
	t.Helper()
	g := sdf.New("chain")
	prev := g.AddActor("A0")
	for i, h := range hops {
		next := g.AddActor("A" + string(rune('1'+i)))
		g.AddEdge(prev, next, h[0], h[1], h[2])
		prev = next
	}
	return g
}

// TestShrinkWithSyntheticFailure checks the greedy loop finds a minimal
// reproducer: the synthetic "bug" fires whenever the graph still contains an
// edge with a nonzero delay, so the minimum is two actors, one edge, delay
// pinned at the smallest value the reduction steps cannot clear while still
// failing.
func TestShrinkWithSyntheticFailure(t *testing.T) {
	g := buildChain(t, [][3]int64{{2, 3, 0}, {1, 1, 8}, {5, 2, 0}, {1, 4, 3}})
	bug := errors.New("synthetic")
	min, minErr := shrinkWith(g, bug, func(cand *sdf.Graph) (error, bool) {
		for _, e := range cand.Edges() {
			if e.Delay > 0 {
				return bug, true
			}
		}
		return nil, false
	})
	if minErr != bug {
		t.Fatalf("minimized error = %v, want the original", minErr)
	}
	if min.NumActors() != 2 || min.NumEdges() != 1 {
		t.Fatalf("minimized to %s, want 2A/1E", graphSignature(min))
	}
	if d := min.Edge(0).Delay; d != 1 {
		t.Fatalf("minimized delay = %d, want 1 (halving bottoms out at the smallest failing value)", d)
	}
}

// TestShrinkPreservesConsistency: every candidate the reducer proposes must
// be a consistent SDF graph, or re-running the production pipeline on it
// would be meaningless.
func TestShrinkPreservesConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		g := randsdf.Graph(rng, randsdf.Config{Actors: 6, Window: 3, DelayProb: 0.5})
		for _, cand := range reductions(g) {
			if !cand.Consistent() {
				t.Fatalf("reduction of consistent graph is inconsistent: %s", graphSignature(cand))
			}
		}
	}
}

// TestCleanRunFindsNothing drives a small deterministic fuzz campaign and
// requires zero violations — the in-process equivalent of the acceptance
// command `sdffuzz -n 500 -seed 1` at reduced n.
func TestCleanRunFindsNothing(t *testing.T) {
	f := &fuzzer{
		rng:       rand.New(rand.NewSource(1)),
		maxActors: 8,
		crashDir:  t.TempDir(),
		configs:   check.PipelineConfigs(),
		seen:      make(map[string]bool),
	}
	f.run(25)
	if f.violations != 0 {
		t.Fatalf("clean run reported %d violations", f.violations)
	}
}

// TestWriteCrasherRoundTrips: the reproducer file must parse back through
// sdfio into a structurally identical graph despite the comment header.
func TestWriteCrasherRoundTrips(t *testing.T) {
	g := buildChain(t, [][3]int64{{3, 2, 1}, {4, 6, 0}})
	g.SetWords(0, 2)
	cfg := check.PipelineConfigs()[0]
	dir := t.TempDir()
	path, err := writeCrasher(dir, "test-bucket", g, cfg, errors.New("boom: detail"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(path), "crasher-test-bucket-") {
		t.Fatalf("unexpected crasher name %s", path)
	}
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	back, err := sdfio.Parse(fh)
	if err != nil {
		t.Fatalf("reproducer does not re-parse: %v", err)
	}
	if back.NumActors() != g.NumActors() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round-trip %s, want %s", graphSignature(back), graphSignature(g))
	}
	for i, e := range g.Edges() {
		if b := back.Edge(sdf.EdgeID(i)); b.Prod != e.Prod || b.Cons != e.Cons || b.Delay != e.Delay || b.Words != e.Words {
			t.Fatalf("edge %d mismatch: %+v vs %+v", i, b, e)
		}
	}
}

// TestBucketOf covers both arms: oracle violations bucket by stage/rule,
// compile errors by their leading text.
func TestBucketOf(t *testing.T) {
	cfg := check.PipelineConfigs()[0]
	v := &check.Violation{Stage: check.StageAllocation, Rule: "overlap", Msg: "x"}
	if got := bucketOf(cfg, v); !strings.HasPrefix(got, "allocation-overlap-") {
		t.Fatalf("violation bucket = %q", got)
	}
	if got := bucketOf(cfg, errors.New("apgan: cannot cluster")); !strings.HasPrefix(got, "compile-apgan-") {
		t.Fatalf("compile bucket = %q", got)
	}
}

// TestClassify exercises the verdict triage including wrapped overflow.
func TestClassify(t *testing.T) {
	if classify(nil) != verdictOK {
		t.Fatal("nil must pass")
	}
	wrapped := &wrapErr{sdf.ErrOverflow}
	if classify(wrapped) != verdictSkip {
		t.Fatal("wrapped overflow must skip")
	}
	if classify(errors.New("anything else")) != verdictFail {
		t.Fatal("other errors must fail")
	}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }
