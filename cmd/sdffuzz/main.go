// Command sdffuzz is the randomized differential fuzzer for the whole
// shared-memory synthesis pipeline: it draws random consistent acyclic SDF
// graphs, compiles each one under every (topological sort x loop
// post-optimization x allocator) configuration, and runs the stage-by-stage
// invariant oracle of internal/check on every result. Each graph's grid is
// compiled through the prefix-sharing plan executor (internal/pass), so the
// sweep also continuously exercises the planner against the oracle. Failing
// graphs are shrunk to minimal reproducers and written to -crashers (default
// testdata/crashers/) as commented .sdf files.
//
//	sdffuzz -n 500 -seed 1          # 500 graphs through the full grid
//	sdffuzz -repro testdata/crashers/crasher-xyz.sdf
//	sdffuzz -corpus                 # replay the crasher corpus, planner grid
//	sdffuzz -store                  # corpus twice through a shared pass-node store
//	sdffuzz -daemon localhost:8347  # differential replay against sdfd
//	sdffuzz -daemon p1,p2,p3        # cluster differential across peers
//
// With -daemon ADDR the fuzzer replays the crasher corpus plus -n random
// graphs against a running sdfd daemon and asserts the daemon's artifact
// bytes match the in-process pipeline for every configuration. A
// comma-separated list turns the replay into a cluster differential:
// comparisons round-robin over the peers and every artifact is re-fetched by
// digest from a different peer, asserting byte-identity no matter which node
// serves.
//
// Exit status: 0 when every graph passes the oracle under every
// configuration, 1 when violations were found, 2 on flag errors.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"flag"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/pass"
	"repro/internal/randsdf"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/service"
)

func main() {
	fs := flag.NewFlagSet("sdffuzz", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 200, "number of random graphs to drive through the grid")
		seed      = fs.Int64("seed", 1, "random seed; runs are deterministic per seed")
		maxActors = fs.Int("actors", 10, "maximum actors per generated graph")
		crashDir  = fs.String("crashers", filepath.Join("testdata", "crashers"), "directory for minimized reproducers")
		repro     = fs.String("repro", "", "re-run the oracle grid on one .sdf reproducer and exit")
		corpus    = fs.Bool("corpus", false, "replay the whole crasher corpus through the planner grid and exit")
		storeRun  = fs.Bool("store", false, "replay the crasher corpus twice through a shared temp pass-node store, asserting second-pass byte-identity and store hits")
		daemon    = fs.String("daemon", "", "replay corpus + random graphs against sdfd daemon(s) at this comma-separated address list")
		verbose   = fs.Bool("v", false, "log every generated graph")
	)
	if code := core.ParseCLI(fs, os.Args[1:]); code >= 0 {
		os.Exit(code)
	}

	if *repro != "" {
		os.Exit(reproduce(*repro))
	}
	if *corpus {
		os.Exit(corpusReplay(*crashDir))
	}
	if *storeRun {
		os.Exit(storeReplay(newReplayFuzzer(*seed, *maxActors, *crashDir), *n))
	}
	if *daemon != "" {
		if daemonReplay(*daemon, newReplayFuzzer(*seed, *maxActors, *crashDir), *n) > 0 {
			os.Exit(1)
		}
		return
	}

	f := &fuzzer{
		rng:       rand.New(rand.NewSource(*seed)),
		maxActors: *maxActors,
		crashDir:  *crashDir,
		verbose:   *verbose,
		configs:   check.PipelineConfigs(),
		seen:      make(map[string]bool),
	}
	f.run(*n)
	fmt.Printf("sdffuzz: %d graphs x %d configs: %d violations, %d overflow skips\n",
		*n, len(f.configs), f.violations, f.skipped)
	if f.violations > 0 {
		fmt.Fprintf(os.Stderr, "sdffuzz: reproducers written to %s\n", f.crashDir)
		os.Exit(1)
	}
}

type fuzzer struct {
	rng        *rand.Rand
	maxActors  int
	crashDir   string
	verbose    bool
	configs    []check.PipelineConfig
	seen       map[string]bool // violation buckets already minimized
	violations int
	skipped    int
}

// randomGraph draws one consistent acyclic graph, occasionally with initial
// tokens and vector (multi-word) edges, the two features that exercise the
// conservative whole-period lifetime paths.
func (f *fuzzer) randomGraph() *sdf.Graph {
	actors := 1 + f.rng.Intn(f.maxActors)
	g := randsdf.Graph(f.rng, randsdf.Config{
		Actors:    actors,
		Window:    1 + f.rng.Intn(actors),
		DelayProb: []float64{0, 0, 0.25, 0.5}[f.rng.Intn(4)],
	})
	if f.rng.Intn(5) == 0 && g.NumEdges() > 0 {
		g.SetWords(sdf.EdgeID(f.rng.Intn(g.NumEdges())), 1+int64(f.rng.Intn(3)))
	}
	return g
}

func (f *fuzzer) run(n int) {
	for i := 0; i < n; i++ {
		g := f.randomGraph()
		if f.verbose {
			fmt.Printf("graph %d: %d actors, %d edges\n", i, g.NumActors(), g.NumEdges())
		}
		for ci, err := range planGrid(g, f.configs) {
			switch classify(err) {
			case verdictOK:
			case verdictSkip:
				f.skipped++
			case verdictFail:
				f.violations++
				f.report(g, f.configs[ci], err)
			}
		}
		switch err := partitionIdentity(g); classify(err) {
		case verdictOK:
		case verdictSkip:
			f.skipped++
		case verdictFail:
			f.violations++
			f.reportIdentity(g, err)
		}
	}
}

// partitionIdentity asserts that worker counts below 2 are invisible:
// compiling with partitions=1 must produce service artifact bytes identical
// to the plain sequential pipeline's.
func partitionIdentity(g *sdf.Graph) error {
	a, _, err := service.CompileArtifact(g, service.CompileOptions{})
	if err != nil {
		return err
	}
	b, _, err := service.CompileArtifact(g, service.CompileOptions{Partitions: 1})
	if err != nil {
		return fmt.Errorf("compiling with partitions=1: %w", err)
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("p1-identity: artifact with partitions=1 differs from the sequential artifact (%d vs %d bytes)",
			len(b), len(a))
	}
	return nil
}

// reportIdentity shrinks and records a P=1 identity failure; the bucket is
// config-independent because the property quantifies over default options.
func (f *fuzzer) reportIdentity(g *sdf.Graph, err error) {
	const bucket = "p1-identity"
	fmt.Fprintf(os.Stderr, "sdffuzz: VIOLATION [%s] on %d-actor graph: %v\n", bucket, g.NumActors(), err)
	if f.seen[bucket] {
		return
	}
	f.seen[bucket] = true
	min, minErr := shrinkWith(g, err, func(cand *sdf.Graph) (error, bool) {
		cerr := partitionIdentity(cand)
		return cerr, cerr != nil && !isOverflow(cerr)
	})
	path, werr := writeCrasher(f.crashDir, bucket, min, check.PipelineConfig{}, minErr)
	if werr != nil {
		fmt.Fprintf(os.Stderr, "sdffuzz: writing crasher: %v\n", werr)
		return
	}
	fmt.Fprintf(os.Stderr, "sdffuzz: minimized to %d actors / %d edges -> %s\n",
		min.NumActors(), min.NumEdges(), path)
}

// planGrid compiles g's full configuration grid through the prefix-sharing
// plan executor and runs the invariant oracle on every successful result. It
// returns one error slot per configuration: nil for a pass, the compile error
// or the oracle violation otherwise. Plan-time failures (a repetitions vector
// that does not exist or overflows) poison every configuration, exactly as
// point-at-a-time compilation would fail each point with the same error.
func planGrid(g *sdf.Graph, configs []check.PipelineConfig) []error {
	points := make([]pass.Options, len(configs))
	for i, cfg := range configs {
		points[i] = cfg.Options()
	}
	errs := make([]error, len(configs))
	outs, err := pass.RunGridOutcomes(context.Background(), g, points, pass.PlanConfig{})
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	for i, o := range outs {
		if o.Err != nil {
			errs[i] = o.Err
			continue
		}
		errs[i] = check.Pipeline(o.Result, check.Options{})
	}
	return errs
}

// report shrinks a failing graph to a minimal reproducer and writes it,
// bucketing by (stage, rule, config) so one underlying bug produces one
// crasher file no matter how many random graphs trip over it.
func (f *fuzzer) report(g *sdf.Graph, cfg check.PipelineConfig, err error) {
	bucket := bucketOf(cfg, err)
	fmt.Fprintf(os.Stderr, "sdffuzz: VIOLATION [%s] on %d-actor graph: %v\n", bucket, g.NumActors(), err)
	if f.seen[bucket] {
		return
	}
	f.seen[bucket] = true
	min, minErr := shrink(g, cfg, err)
	path, werr := writeCrasher(f.crashDir, bucket, min, cfg, minErr)
	if werr != nil {
		fmt.Fprintf(os.Stderr, "sdffuzz: writing crasher: %v\n", werr)
		return
	}
	fmt.Fprintf(os.Stderr, "sdffuzz: minimized to %d actors / %d edges -> %s\n",
		min.NumActors(), min.NumEdges(), path)
}

type verdict int

const (
	verdictOK verdict = iota
	verdictSkip
	verdictFail
)

// classify sorts an oracle result: nil passes, int64 overflow in the
// repetitions arithmetic is an expected skip on extreme random rates, and
// everything else — oracle violations and unexpected compile failures alike
// — is a finding.
func classify(err error) verdict {
	switch {
	case err == nil:
		return verdictOK
	case isOverflow(err):
		return verdictSkip
	default:
		return verdictFail
	}
}

func isOverflow(err error) bool {
	// num.ErrOverflow is the root sentinel every package-level overflow error
	// (sdf.ErrOverflow, TNSE, bufmem, bound overflows) wraps.
	return errors.Is(err, num.ErrOverflow)
}

// bucketOf derives the crash bucket: stage/rule for oracle violations, the
// leading error text for compile failures.
func bucketOf(cfg check.PipelineConfig, err error) string {
	if v, ok := asViolation(err); ok {
		return fmt.Sprintf("%s-%s-%s", v.Stage, v.Rule, cfg)
	}
	msg := err.Error()
	if i := strings.IndexByte(msg, ':'); i > 0 {
		msg = msg[:i]
	}
	return fmt.Sprintf("compile-%s-%s", strings.ReplaceAll(msg, " ", "_"), cfg)
}

func asViolation(err error) (*check.Violation, bool) {
	for e := err; e != nil; {
		if v, ok := e.(*check.Violation); ok {
			return v, true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		e = u.Unwrap()
	}
	return nil, false
}

// writeCrasher serializes the minimized graph with a comment header carrying
// the configuration, the violation, and the reproduction command. The file
// is valid .sdf: comments are ignored by sdfio.Parse.
func writeCrasher(dir, bucket string, g *sdf.Graph, cfg check.PipelineConfig, err error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# sdffuzz minimized reproducer\n")
	fmt.Fprintf(&b, "# config: %s\n", cfg)
	fmt.Fprintf(&b, "# error: %v\n", err)
	fmt.Fprintf(&b, "# reproduce: go run ./cmd/sdffuzz -repro <this file>\n")
	if werr := sdfio.Write(&b, g); werr != nil {
		return "", werr
	}
	h := fnv.New32a()
	h.Write([]byte(b.String()))
	path := filepath.Join(dir, fmt.Sprintf("crasher-%s-%08x.sdf", bucket, h.Sum32()))
	return path, os.WriteFile(path, []byte(b.String()), 0o644)
}

// reproduce loads one crasher and re-runs the whole configuration grid on
// it through the planner, reporting every configuration's verdict.
func reproduce(path string) int {
	fh, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdffuzz:", err)
		return 1
	}
	g, err := sdfio.Parse(fh)
	fh.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdffuzz:", err)
		return 1
	}
	return replayGraph(g)
}

// replayGraph sweeps one graph's grid through the planner and prints each
// configuration's verdict; the return value is 1 when any config failed.
func replayGraph(g *sdf.Graph) int {
	configs := check.PipelineConfigs()
	failures := 0
	for ci, err := range planGrid(g, configs) {
		cfg := configs[ci]
		switch classify(err) {
		case verdictOK:
			fmt.Printf("%-20s ok\n", cfg)
		case verdictSkip:
			fmt.Printf("%-20s skipped (overflow)\n", cfg)
		case verdictFail:
			failures++
			fmt.Printf("%-20s FAIL: %v\n", cfg, err)
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// corpusReplay re-runs every crasher in the corpus through the planner grid,
// a regression sweep over all historically minimized reproducers. Returns 1
// when any configuration of any corpus graph still fails.
func corpusReplay(dir string) int {
	graphs := corpusGraphs(dir)
	if len(graphs) == 0 {
		fmt.Printf("sdffuzz: no corpus graphs under %s\n", dir)
		return 0
	}
	fmt.Printf("sdffuzz: replaying %d corpus graphs through the planner grid\n", len(graphs))
	code := 0
	for _, g := range graphs {
		fmt.Printf("-- %s\n", g.Name)
		if replayGraph(g) != 0 {
			code = 1
		}
	}
	return code
}
