package main

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/sdf"
)

// shrink greedily minimizes a failing graph while the failure stays in the
// same bucket (stage, rule, config). Each pass tries single-step reductions —
// drop an actor with all its edges, drop one edge, zero or halve a delay,
// reset a vector edge to one word — and restarts whenever one sticks, until a
// full pass yields no accepted reduction. Dropping actors or edges only
// relaxes the balance equations, so every candidate remains a consistent SDF
// graph and re-runs the exact production pipeline.
func shrink(g *sdf.Graph, cfg check.PipelineConfig, orig error) (*sdf.Graph, error) {
	bucket := bucketOf(cfg, orig)
	return shrinkWith(g, orig, func(cand *sdf.Graph) (error, bool) {
		err := cfg.Run(cand, check.Options{})
		return err, err != nil && bucketOf(cfg, err) == bucket
	})
}

// shrinkWith is the generic greedy loop: reproduces reports whether a
// candidate still triggers the original failure (and with what error).
func shrinkWith(g *sdf.Graph, orig error, reproduces func(*sdf.Graph) (error, bool)) (*sdf.Graph, error) {
	cur, curErr := g, orig
	reduced := true
	for reduced {
		reduced = false
		for _, cand := range reductions(cur) {
			if err, ok := reproduces(cand); ok {
				cur, curErr = cand, err
				reduced = true
				break
			}
		}
	}
	return cur, curErr
}

// reductions enumerates every single-step simplification of g, smallest
// candidates first so the greedy loop prefers structural cuts over parameter
// tweaks.
func reductions(g *sdf.Graph) []*sdf.Graph {
	var out []*sdf.Graph
	for a := 0; a < g.NumActors(); a++ {
		if g.NumActors() > 1 {
			out = append(out, withoutActor(g, sdf.ActorID(a)))
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		out = append(out, withoutEdge(g, sdf.EdgeID(e)))
	}
	for _, e := range g.Edges() {
		if e.Delay > 0 {
			out = append(out, withEdgeTweak(g, e.ID, func(ed *sdf.Edge) { ed.Delay = 0 }))
		}
		if e.Delay > 1 {
			out = append(out, withEdgeTweak(g, e.ID, func(ed *sdf.Edge) { ed.Delay /= 2 }))
		}
		if e.Words > 1 {
			out = append(out, withEdgeTweak(g, e.ID, func(ed *sdf.Edge) { ed.Words = 1 }))
		}
	}
	return out
}

// rebuild constructs a fresh graph from a filtered actor set and an edge
// transform. keep decides which actors survive; tweak may mutate a copied
// edge before insertion (edges touching dropped actors are discarded).
func rebuild(g *sdf.Graph, keep func(sdf.ActorID) bool, skipEdge sdf.EdgeID, tweak func(*sdf.Edge)) *sdf.Graph {
	ng := sdf.New(g.Name)
	remap := make(map[sdf.ActorID]sdf.ActorID, g.NumActors())
	for _, a := range g.Actors() {
		if keep(a.ID) {
			remap[a.ID] = ng.AddActor(a.Name)
		}
	}
	for _, e := range g.Edges() {
		if e.ID == skipEdge {
			continue
		}
		src, okS := remap[e.Src]
		dst, okD := remap[e.Dst]
		if !okS || !okD {
			continue
		}
		ec := e
		if tweak != nil {
			tweak(&ec)
		}
		id := ng.AddEdge(src, dst, ec.Prod, ec.Cons, ec.Delay)
		if ec.Words > 1 {
			ng.SetWords(id, ec.Words)
		}
	}
	return ng
}

func withoutActor(g *sdf.Graph, drop sdf.ActorID) *sdf.Graph {
	return rebuild(g, func(a sdf.ActorID) bool { return a != drop }, -1, nil)
}

func withoutEdge(g *sdf.Graph, drop sdf.EdgeID) *sdf.Graph {
	return rebuild(g, func(sdf.ActorID) bool { return true }, drop, nil)
}

func withEdgeTweak(g *sdf.Graph, target sdf.EdgeID, mut func(*sdf.Edge)) *sdf.Graph {
	return rebuild(g, func(sdf.ActorID) bool { return true }, -1, func(e *sdf.Edge) {
		if e.ID == target {
			mut(e)
		}
	})
}

// graphSignature is a compact structural description used by tests to assert
// shrinker behaviour without depending on actor names.
func graphSignature(g *sdf.Graph) string {
	return fmt.Sprintf("%dA/%dE", g.NumActors(), g.NumEdges())
}
