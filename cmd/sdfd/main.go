// Command sdfd serves the SDF shared-memory synthesis pipeline over HTTP.
//
// It is a long-running daemon wrapping the same compilation pipeline as
// sdfc: POST an .sdf program to /v1/compile and receive the schedule,
// allocation table, buffer-memory statistics, and (optionally) generated
// C/VHDL as a JSON artifact. Identical requests are collapsed onto one
// pipeline run and served from a content-addressed cache; see
// docs/SERVICE.md for the API and cache semantics.
//
// Usage:
//
//	sdfd [-addr :8347] [-workers N] [-queue N] [-cache-mb N]
//	     [-request-timeout D] [-compile-timeout D] [-max-request-kb N]
//	     [-store DIR] [-store-mb N]
//	     [-peers a,b,c] [-advertise host:port] [-drain D]
//
// On startup the daemon prints one machine-readable line to stdout:
//
//	SDFD_READY addr=<host:port>
//
// carrying the resolved listen address. Pass "-addr 127.0.0.1:0" to bind an
// ephemeral port and read the line to find it — sdfload -spawn and
// make load-short rely on this.
//
// With -store, compiled pass-stage artifacts persist in a content-addressed
// on-disk store and survive daemon restarts: recompiling a graph after a
// small edit loads every unaffected pipeline stage from disk instead of
// executing it (docs/PIPELINE.md, "Incremental recompilation").
//
// With -peers, the daemon joins a sharded cluster: the listed members (plus
// this node) form a consistent-hash ring over artifact digests, compile
// requests proxy to their digest's owner, cache misses try peer fetch
// before recompiling, and async grid jobs (POST /v1/jobs/grid) spread their
// entries across the membership (docs/SERVICE.md, "Cluster mode"). On
// SIGINT/SIGTERM a clustered or job-serving daemon drains gracefully: new
// work is refused with 503, /healthz flips to 503 so peers rotate it out,
// and in-flight async jobs get up to -drain to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/nodestore"
	"repro/internal/service"
)

func main() {
	fs := flag.NewFlagSet("sdfd", flag.ContinueOnError)
	addr := fs.String("addr", ":8347", "listen address")
	workers := fs.Int("workers", 0, "compile worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth (0 = 2x workers)")
	cacheMB := fs.Int64("cache-mb", 64, "artifact cache budget in MiB (negative disables)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline")
	compTimeout := fs.Duration("compile-timeout", 60*time.Second, "per-pipeline-run deadline")
	maxKB := fs.Int64("max-request-kb", 1024, "request body limit in KiB")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429/503")
	gridMax := fs.Int("grid-max-entries", 64, "maximum option entries per /v1/grid request")
	maxJobs := fs.Int("max-jobs", 8, "maximum concurrently running async grid jobs")
	jobMax := fs.Int("job-max-entries", 4096, "maximum option entries per /v1/jobs/grid request")
	storeDir := fs.String("store", "", "persistent pass-node store directory (empty disables)")
	storeMB := fs.Int64("store-mb", 256, "pass-node store budget in MiB (<= 0 disables)")
	peers := fs.String("peers", "", "comma-separated cluster members (host:port); empty runs single-node")
	advertise := fs.String("advertise", "", "this node's identity as peers spell it (default: resolved listen address)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "peer healthz probe period")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown grace period for in-flight async jobs")
	if code := core.ParseCLI(fs, os.Args[1:]); code >= 0 {
		os.Exit(code)
	}

	cacheBudget := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBudget = -1
	}
	var store *nodestore.Store
	if *storeDir != "" {
		var err error
		store, err = nodestore.Open(*storeDir, *storeMB<<20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdfd: opening pass-node store: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sdfd: pass-node store at %s (%d frames, %d bytes)\n",
			*storeDir, store.Stats().Entries, store.Stats().Bytes)
	}

	// Listen before building the service: with -peers, the node's advertised
	// ring identity defaults to the *resolved* listen address, which only
	// exists once the socket is bound (matters for "-addr 127.0.0.1:0").
	// The resolved address also goes to stdout as a machine-readable
	// readiness line that supervisors — sdfload -spawn, make load-short,
	// scripts/cluster-smoke.sh — parse to find the daemon.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdfd: %v\n", err)
		os.Exit(1)
	}

	var clusterCfg *service.ClusterConfig
	if *peers != "" {
		self := *advertise
		if self == "" {
			self = ln.Addr().String()
		}
		var members []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				members = append(members, p)
			}
		}
		clusterCfg = &service.ClusterConfig{
			Self:          self,
			Peers:         members,
			ProbeInterval: *probeInterval,
		}
		fmt.Fprintf(os.Stderr, "sdfd: cluster member %s of %v\n", self, members)
	}

	srv := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheBudget:     cacheBudget,
		RequestTimeout:  *reqTimeout,
		CompileTimeout:  *compTimeout,
		MaxRequestBytes: *maxKB << 10,
		RetryAfter:      *retryAfter,
		GridMaxEntries:  *gridMax,
		MaxJobs:         *maxJobs,
		JobMaxEntries:   *jobMax,
		NodeStore:       store,
		Cluster:         clusterCfg,
	})

	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Generous versus RequestTimeout: the handler enforces the real
		// deadline; these only bound pathological slow-loris clients.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("SDFD_READY addr=%s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "sdfd: listening on %s\n", ln.Addr())

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "sdfd: %v\n", err)
		srv.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work (and flip /healthz to 503 so peers
	// rotate this node out of their rings), give in-flight async jobs the
	// grace period, then shut the listener and the service down.
	fmt.Fprintln(os.Stderr, "sdfd: draining")
	srv.BeginDrain()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	if err := srv.AwaitJobs(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "sdfd: drain: jobs still running after %v, shutting down anyway\n", *drain)
	}
	cancelDrain()
	fmt.Fprintln(os.Stderr, "sdfd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "sdfd: shutdown: %v\n", err)
	}
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "sdfd: %v\n", err)
		os.Exit(1)
	}
}
