// Command sdfc is the shared-memory SDF compiler driver: it reads an SDF
// graph (from a .sdf file or a named built-in benchmark system), runs the
// full scheduling/lifetime/allocation flow of Murthy & Bhattacharyya, prints
// the resulting schedule and memory metrics, and optionally emits a C
// implementation.
//
// Usage:
//
//	sdfc -system satrec
//	sdfc -graph mygraph.sdf -strategy apgan -looping dppo
//	sdfc -system cddat -emit-c out.c
//	sdfc -system cddat -server localhost:8347
//
// With -server ADDR the compilation is delegated to a running sdfd daemon
// (start one with `sdfd` or `make serve`), which caches artifacts by
// content address so repeated compilations of the same graph are free.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/lifetime"
	"repro/internal/nodestore"
	"repro/internal/partition"
	"repro/internal/pass"
	"repro/internal/regularity"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/service"
	"repro/internal/systems"
)

func main() {
	fs := flag.NewFlagSet("sdfc", flag.ContinueOnError)
	var (
		graphFile = fs.String("graph", "", "path to a .sdf graph file")
		system    = fs.String("system", "", "built-in benchmark system name (see -list)")
		list      = fs.Bool("list", false, "list built-in systems and exit")
		strategy  = fs.String("strategy", "rpmc", "lexical order strategy: rpmc | apgan")
		loopingF  = fs.String("looping", "sdppo", "loop hierarchy: sdppo | dppo | chain | flat")
		allocF    = fs.String("alloc", "ffdur,ffstart", "comma-separated allocators: ffdur | ffstart | bfdur")
		emitC     = fs.String("emit-c", "", "write generated C implementation to this file")
		emitTC    = fs.String("emit-threaded-c", "", "write generated pthread C implementation to this file (needs -partitions >= 2)")
		emitVHDL  = fs.String("emit-vhdl", "", "write generated behavioral VHDL to this file")
		partsF    = fs.Int("partitions", 0, "compile a P-way barrier-phased parallel schedule (0/1 = sequential)")
		verify    = fs.Bool("verify", true, "run the token-level shared-memory simulator")
		doMerge   = fs.Bool("merge", false, "apply the Sec. 12 buffer-merging extension")
		chart     = fs.Bool("chart", false, "print the buffer lifetime chart and memory map")
		dotOut    = fs.String("dot", "", "write the graph in Graphviz DOT form to this file")
		quiet     = fs.Bool("q", false, "print only the final metrics line")
		server    = fs.String("server", "", "delegate compilation to an sdfd daemon at this address (e.g. localhost:8347)")
		storeDir  = fs.String("store", "", "local persistent pass-node store directory; recompilations reuse unaffected pipeline stages (local-only)")
		storeMB   = fs.Int64("store-mb", 256, "pass-node store budget in MiB (<= 0 disables)")
	)
	if code := core.ParseCLI(fs, os.Args[1:]); code >= 0 {
		os.Exit(code)
	}

	if *list {
		names := builtinNames()
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	g, err := loadGraph(*graphFile, *system)
	if err != nil {
		fatal(err)
	}
	if *server != "" {
		if *chart || *dotOut != "" {
			fatal(fmt.Errorf("-chart and -dot are local-only; drop them or drop -server"))
		}
		if *storeDir != "" {
			fatal(fmt.Errorf("-store is local-only (the daemon has its own -store flag); drop it or drop -server"))
		}
		runRemote(*server, g, service.CompileOptions{
			Strategy:   *strategy,
			Looping:    *loopingF,
			Allocators: splitAllocators(*allocF),
			Verify:     *verify,
			Merging:    *doMerge,
			Partitions: *partsF,
			EmitC:      *emitC != "" || *emitTC != "",
			EmitVHDL:   *emitVHDL != "",
		}, *emitC, *emitTC, *emitVHDL, *quiet)
		return
	}
	opts := core.Options{Verify: *verify, Merging: *doMerge, Partitions: *partsF}
	switch *strategy {
	case "rpmc":
		opts.Strategy = core.RPMC
	case "apgan":
		opts.Strategy = core.APGAN
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	switch *loopingF {
	case "sdppo":
		opts.Looping = core.SDPPOLoops
	case "dppo":
		opts.Looping = core.DPPOLoops
	case "chain":
		opts.Looping = core.ChainPreciseLoops
	case "flat":
		opts.Looping = core.FlatLoops
	default:
		fatal(fmt.Errorf("unknown looping %q", *loopingF))
	}
	for _, a := range splitAllocators(*allocF) {
		switch a {
		case "ffdur":
			opts.Allocators = append(opts.Allocators, alloc.FirstFitDuration)
		case "ffstart":
			opts.Allocators = append(opts.Allocators, alloc.FirstFitStart)
		case "bfdur":
			opts.Allocators = append(opts.Allocators, alloc.BestFitDuration)
		default:
			fatal(fmt.Errorf("unknown allocator %q", a))
		}
	}

	var res *core.Result
	if *storeDir != "" {
		res, err = compileWithStore(g, opts, *storeDir, *storeMB<<20)
	} else {
		res, err = core.CompileGeneral(g, opts)
	}
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("graph      : %s (%d actors, %d edges)\n", g.Name, g.NumActors(), g.NumEdges())
		fmt.Printf("order      : %s + %s\n", opts.Strategy, opts.Looping)
		fmt.Printf("schedule   : %s\n", res.Schedule)
		fmt.Printf("bmlb       : %d\n", res.Metrics.BMLB)
		fmt.Printf("non-shared : %d  (bufmem of this schedule, EQ 1)\n", res.Metrics.NonSharedBufMem)
		fmt.Printf("dp estimate: %d\n", res.Metrics.DPCost)
		fmt.Printf("mco / mcp  : %d / %d\n", res.Metrics.MCO, res.Metrics.MCP)
		for _, kv := range sortedTotalsList(res.Metrics.AllocTotals) {
			fmt.Printf("alloc %-7s: %d\n", kv.name, kv.total)
		}
	}
	if *chart {
		fmt.Println("\nbuffer lifetimes (one column per schedule step):")
		fmt.Print(lifetime.Chart(res.Intervals, res.Tree.TotalDur, 96))
		fmt.Println("\nmemory map:")
		for _, p := range res.Best.Placements {
			fmt.Printf("  [%6d,%6d)  %s\n", p.Offset, p.Offset+p.Interval.Size, p.Interval.Name)
		}
	}
	impr := 0.0
	if res.Metrics.NonSharedBufMem > 0 {
		impr = 100 * float64(res.Metrics.NonSharedBufMem-res.Metrics.SharedTotal) /
			float64(res.Metrics.NonSharedBufMem)
	}
	fmt.Printf("shared memory: %d cells (%s), %.1f%% below non-shared\n",
		res.Metrics.SharedTotal, res.BestBy, impr)
	if *doMerge && res.Metrics.Merges > 0 {
		fmt.Printf("with merging : %d cells (%d buffer pairs folded)\n",
			res.Metrics.MergedTotal, res.Metrics.Merges)
	}
	if res.Partition != nil {
		fmt.Printf("partitioned  : %d workers, %d phases/period, %d cells segmented (%.2fx sequential)\n",
			res.Partition.P, res.Partition.NumPhases, res.Segmented.Total,
			float64(res.Segmented.Total)/float64(max64(res.Metrics.SharedTotal, 1)))
		for _, s := range res.Segmented.Segments {
			owner := fmt.Sprintf("worker %d", s.Worker)
			if s.Worker == partition.SharedWorker {
				owner = "shared"
			}
			fmt.Printf("  segment [%6d,%6d)  %s\n", s.Base, s.Base+s.Cells, owner)
		}
	}

	if *emitC != "" {
		src := codegen.GenerateC(res)
		if err := os.WriteFile(*emitC, []byte(src), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *emitC, len(src))
	}
	if *emitTC != "" {
		src := codegen.GenerateThreadedC(res)
		if src == "" {
			fatal(fmt.Errorf("-emit-threaded-c needs -partitions >= 2"))
		}
		if err := os.WriteFile(*emitTC, []byte(src), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *emitTC, len(src))
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := sdfio.WriteDOT(f, g); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
	if *emitVHDL != "" {
		src := codegen.GenerateVHDL(res)
		if err := os.WriteFile(*emitVHDL, []byte(src), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *emitVHDL, len(src))
	}
}

// compileWithStore compiles through the pass planner backed by a persistent
// on-disk node store: stages whose inputs are unchanged since an earlier
// sdfc (or sdfd) run against the same store directory are loaded instead of
// executed. Results are identical to the direct path — the store is a pure
// cache keyed by what each pass actually reads.
func compileWithStore(g *sdf.Graph, opts core.Options, dir string, budget int64) (*core.Result, error) {
	st, err := nodestore.Open(dir, budget)
	if err != nil {
		return nil, err
	}
	outs, err := pass.RunGridOutcomes(context.Background(), g, []core.Options{opts}, pass.PlanConfig{Store: st})
	if err != nil {
		return nil, err
	}
	return outs[0].Result, outs[0].Err
}

// splitAllocators turns the -alloc flag value into a clean name list.
func splitAllocators(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runRemote delegates the compilation to an sdfd daemon and prints the same
// summary the local path does, reconstructed from the JSON artifact.
func runRemote(addr string, g *sdf.Graph, opts service.CompileOptions, emitC, emitTC, emitVHDL string, quiet bool) {
	text, err := sdfio.CanonicalString(g)
	if err != nil {
		fatal(err)
	}
	client := &service.Client{BaseURL: addr}
	resp, err := client.Compile(service.CompileRequest{Graph: text, Options: opts}, false)
	if err != nil {
		fatal(err)
	}
	var art service.Artifact
	if err := json.Unmarshal(resp.Artifact, &art); err != nil {
		fatal(fmt.Errorf("decoding artifact: %w", err))
	}
	if !quiet {
		fmt.Printf("graph      : %s (%d actors, %d edges)\n", art.Graph, art.Actors, art.Edges)
		fmt.Printf("order      : %s + %s\n", art.Options.Strategy, art.Options.Looping)
		fmt.Printf("schedule   : %s\n", art.Schedule)
		fmt.Printf("bmlb       : %d\n", art.Metrics.BMLB)
		fmt.Printf("non-shared : %d  (bufmem of this schedule, EQ 1)\n", art.Metrics.NonSharedBufMem)
		fmt.Printf("dp estimate: %d\n", art.Metrics.DPCost)
		fmt.Printf("mco / mcp  : %d / %d\n", art.Metrics.MCO, art.Metrics.MCP)
		for _, a := range art.Allocations {
			fmt.Printf("alloc %-7s: %d\n", a.Allocator, a.Total)
		}
		cached := "compiled"
		if resp.Cached {
			cached = "cache hit"
		} else if resp.Coalesced {
			cached = "coalesced"
		}
		fmt.Printf("server     : %s, %s, digest %s\n", addr, cached, resp.Digest)
	}
	impr := 0.0
	if art.Metrics.NonSharedBufMem > 0 {
		impr = 100 * float64(art.Metrics.NonSharedBufMem-art.Metrics.SharedTotal) /
			float64(art.Metrics.NonSharedBufMem)
	}
	fmt.Printf("shared memory: %d cells (%s), %.1f%% below non-shared\n",
		art.Metrics.SharedTotal, art.Best, impr)
	if opts.Merging && art.Metrics.Merges > 0 {
		fmt.Printf("with merging : %d cells (%d buffer pairs folded)\n",
			art.Metrics.MergedTotal, art.Metrics.Merges)
	}
	if art.Partition != nil {
		fmt.Printf("partitioned  : %d workers, %d phases/period, %d cells segmented (%.2fx sequential)\n",
			art.Partition.Workers, art.Partition.Phases, art.Partition.ParallelTotal,
			float64(art.Partition.ParallelTotal)/float64(max64(art.Partition.SASTotal, 1)))
		for _, s := range art.Partition.Segments {
			owner := fmt.Sprintf("worker %d", s.Worker)
			if s.Worker == partition.SharedWorker {
				owner = "shared"
			}
			fmt.Printf("  segment [%6d,%6d)  %s\n", s.Base, s.Base+s.Cells, owner)
		}
	}
	if emitC != "" {
		if err := os.WriteFile(emitC, []byte(art.C), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", emitC, len(art.C))
	}
	if emitTC != "" {
		if art.ThreadedC == "" {
			fatal(fmt.Errorf("-emit-threaded-c needs -partitions >= 2"))
		}
		if err := os.WriteFile(emitTC, []byte(art.ThreadedC), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", emitTC, len(art.ThreadedC))
	}
	if emitVHDL != "" {
		if err := os.WriteFile(emitVHDL, []byte(art.VHDL), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", emitVHDL, len(art.VHDL))
	}
}

type kv struct {
	name  string
	total int64
}

func sortedTotalsList(m map[string]int64) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func loadGraph(file, system string) (*sdf.Graph, error) {
	switch {
	case file != "" && system != "":
		return nil, fmt.Errorf("use -graph or -system, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sdfio.Parse(f)
	case system != "":
		g, ok := builtins()[system]
		if !ok {
			return nil, fmt.Errorf("unknown system %q (try -list)", system)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("need -graph FILE or -system NAME")
	}
}

func builtins() map[string]*sdf.Graph {
	m := map[string]*sdf.Graph{}
	for _, g := range systems.Table1Systems() {
		m[g.Name] = g
	}
	for _, g := range []*sdf.Graph{
		systems.CDDAT(),
		systems.Homogeneous(4, 4),
		systems.EchoCanceller(),
		regularity.FIR(8),
	} {
		m[g.Name] = g
	}
	return m
}

func builtinNames() []string {
	var names []string
	for n := range builtins() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdfc:", err)
	os.Exit(1)
}
