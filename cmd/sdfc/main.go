// Command sdfc is the shared-memory SDF compiler driver: it reads an SDF
// graph (from a .sdf file or a named built-in benchmark system), runs the
// full scheduling/lifetime/allocation flow of Murthy & Bhattacharyya, prints
// the resulting schedule and memory metrics, and optionally emits a C
// implementation.
//
// Usage:
//
//	sdfc -system satrec
//	sdfc -graph mygraph.sdf -strategy apgan -looping dppo
//	sdfc -system cddat -emit-c out.c
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/lifetime"
	"repro/internal/regularity"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/systems"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "path to a .sdf graph file")
		system    = flag.String("system", "", "built-in benchmark system name (see -list)")
		list      = flag.Bool("list", false, "list built-in systems and exit")
		strategy  = flag.String("strategy", "rpmc", "lexical order strategy: rpmc | apgan")
		loopingF  = flag.String("looping", "sdppo", "loop hierarchy: sdppo | dppo | chain | flat")
		allocF    = flag.String("alloc", "ffdur,ffstart", "comma-separated allocators: ffdur | ffstart | bfdur")
		emitC     = flag.String("emit-c", "", "write generated C implementation to this file")
		emitVHDL  = flag.String("emit-vhdl", "", "write generated behavioral VHDL to this file")
		verify    = flag.Bool("verify", true, "run the token-level shared-memory simulator")
		doMerge   = flag.Bool("merge", false, "apply the Sec. 12 buffer-merging extension")
		chart     = flag.Bool("chart", false, "print the buffer lifetime chart and memory map")
		dotOut    = flag.String("dot", "", "write the graph in Graphviz DOT form to this file")
		quiet     = flag.Bool("q", false, "print only the final metrics line")
	)
	flag.Parse()

	if *list {
		names := builtinNames()
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	g, err := loadGraph(*graphFile, *system)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Verify: *verify, Merging: *doMerge}
	switch *strategy {
	case "rpmc":
		opts.Strategy = core.RPMC
	case "apgan":
		opts.Strategy = core.APGAN
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	switch *loopingF {
	case "sdppo":
		opts.Looping = core.SDPPOLoops
	case "dppo":
		opts.Looping = core.DPPOLoops
	case "chain":
		opts.Looping = core.ChainPreciseLoops
	case "flat":
		opts.Looping = core.FlatLoops
	default:
		fatal(fmt.Errorf("unknown looping %q", *loopingF))
	}
	for _, a := range strings.Split(*allocF, ",") {
		switch strings.TrimSpace(a) {
		case "ffdur":
			opts.Allocators = append(opts.Allocators, alloc.FirstFitDuration)
		case "ffstart":
			opts.Allocators = append(opts.Allocators, alloc.FirstFitStart)
		case "bfdur":
			opts.Allocators = append(opts.Allocators, alloc.BestFitDuration)
		case "":
		default:
			fatal(fmt.Errorf("unknown allocator %q", a))
		}
	}

	res, err := core.CompileGeneral(g, opts)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("graph      : %s (%d actors, %d edges)\n", g.Name, g.NumActors(), g.NumEdges())
		fmt.Printf("order      : %s + %s\n", opts.Strategy, opts.Looping)
		fmt.Printf("schedule   : %s\n", res.Schedule)
		fmt.Printf("bmlb       : %d\n", res.Metrics.BMLB)
		fmt.Printf("non-shared : %d  (bufmem of this schedule, EQ 1)\n", res.Metrics.NonSharedBufMem)
		fmt.Printf("dp estimate: %d\n", res.Metrics.DPCost)
		fmt.Printf("mco / mcp  : %d / %d\n", res.Metrics.MCO, res.Metrics.MCP)
		for _, kv := range sortedTotalsList(res.Metrics.AllocTotals) {
			fmt.Printf("alloc %-7s: %d\n", kv.name, kv.total)
		}
	}
	if *chart {
		fmt.Println("\nbuffer lifetimes (one column per schedule step):")
		fmt.Print(lifetime.Chart(res.Intervals, res.Tree.TotalDur, 96))
		fmt.Println("\nmemory map:")
		for _, p := range res.Best.Placements {
			fmt.Printf("  [%6d,%6d)  %s\n", p.Offset, p.Offset+p.Interval.Size, p.Interval.Name)
		}
	}
	impr := 0.0
	if res.Metrics.NonSharedBufMem > 0 {
		impr = 100 * float64(res.Metrics.NonSharedBufMem-res.Metrics.SharedTotal) /
			float64(res.Metrics.NonSharedBufMem)
	}
	fmt.Printf("shared memory: %d cells (%s), %.1f%% below non-shared\n",
		res.Metrics.SharedTotal, res.BestBy, impr)
	if *doMerge && res.Metrics.Merges > 0 {
		fmt.Printf("with merging : %d cells (%d buffer pairs folded)\n",
			res.Metrics.MergedTotal, res.Metrics.Merges)
	}

	if *emitC != "" {
		src := codegen.GenerateC(res)
		if err := os.WriteFile(*emitC, []byte(src), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *emitC, len(src))
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := sdfio.WriteDOT(f, g); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
	if *emitVHDL != "" {
		src := codegen.GenerateVHDL(res)
		if err := os.WriteFile(*emitVHDL, []byte(src), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *emitVHDL, len(src))
	}
}

type kv struct {
	name  string
	total int64
}

func sortedTotalsList(m map[string]int64) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func loadGraph(file, system string) (*sdf.Graph, error) {
	switch {
	case file != "" && system != "":
		return nil, fmt.Errorf("use -graph or -system, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sdfio.Parse(f)
	case system != "":
		g, ok := builtins()[system]
		if !ok {
			return nil, fmt.Errorf("unknown system %q (try -list)", system)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("need -graph FILE or -system NAME")
	}
}

func builtins() map[string]*sdf.Graph {
	m := map[string]*sdf.Graph{}
	for _, g := range systems.Table1Systems() {
		m[g.Name] = g
	}
	for _, g := range []*sdf.Graph{
		systems.CDDAT(),
		systems.Homogeneous(4, 4),
		systems.EchoCanceller(),
		regularity.FIR(8),
	} {
		m[g.Name] = g
	}
	return m
}

func builtinNames() []string {
	var names []string
	for n := range builtins() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdfc:", err)
	os.Exit(1)
}
