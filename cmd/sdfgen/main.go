// Command sdfgen emits SDF graphs in the textual .sdf format consumed by
// sdfc: either one of the built-in benchmark systems or a random consistent
// acyclic graph.
//
//	sdfgen -system qmf12_3d > fb.sdf
//	sdfgen -random 50 -seed 7 > rand50.sdf
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/randsdf"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/systems"
)

func main() {
	fs := flag.NewFlagSet("sdfgen", flag.ContinueOnError)
	var (
		system = fs.String("system", "", "built-in system name (see -list)")
		list   = fs.Bool("list", false, "list built-in systems and exit")
		random = fs.Int("random", 0, "generate a random graph with this many actors")
		seed   = fs.Int64("seed", 1, "seed for -random")
	)
	if code := core.ParseCLI(fs, os.Args[1:]); code >= 0 {
		os.Exit(code)
	}

	all := map[string]*sdf.Graph{}
	for _, g := range systems.Table1Systems() {
		all[g.Name] = g
	}
	cd := systems.CDDAT()
	all[cd.Name] = cd

	if *list {
		var names []string
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	var g *sdf.Graph
	switch {
	case *system != "" && *random > 0:
		fatal(fmt.Errorf("use -system or -random, not both"))
	case *system != "":
		var ok bool
		g, ok = all[*system]
		if !ok {
			fatal(fmt.Errorf("unknown system %q (try -list)", *system))
		}
	case *random > 0:
		g = randsdf.Graph(rand.New(rand.NewSource(*seed)), randsdf.Config{Actors: *random})
	default:
		fatal(fmt.Errorf("need -system NAME or -random N"))
	}
	if err := sdfio.Write(os.Stdout, g); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdfgen:", err)
	os.Exit(1)
}
