// Command sdflint runs the repository's custom static-analysis pass: the
// determinism and overflow-safety analyzers of internal/lint (maporder,
// bannedcall, checkedmul, errattrib, exhaustive) over every package of the
// module. It is part of the tier-1 gate via `make lint`.
//
//	sdflint ./...              # lint the whole module (the default)
//	sdflint internal/sched     # restrict reporting to one directory subtree
//	sdflint -list              # print the analyzers and exit
//
// Diagnostics are printed one per line as file:line:col: message (analyzer),
// with paths relative to the module root. Exit status: 0 when clean, 1 when
// any diagnostic was reported, 2 on flag errors or when the module cannot be
// loaded.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("sdflint", flag.ContinueOnError)
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	if code := core.ParseCLI(fs, os.Args[1:]); code >= 0 {
		os.Exit(code)
	}
	if *list {
		for _, a := range lint.Analyzers() {
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = strings.Join(a.Packages, ", ")
			}
			fmt.Printf("%-12s %s [%s]\n", a.Name, a.Doc, scope)
		}
		return
	}
	os.Exit(run(fs.Args()))
}

func run(args []string) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdflint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdflint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdflint:", err)
		return 2
	}
	if filtered, err := filterPackages(pkgs, args, root); err != nil {
		fmt.Fprintln(os.Stderr, "sdflint:", err)
		return 2
	} else {
		pkgs = filtered
	}
	diags := lint.RunAll(lint.Analyzers(), loader, pkgs)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sdflint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// filterPackages narrows the loaded set to the requested directory subtrees.
// "./..." (and no arguments at all) means everything; "dir" and "dir/..."
// mean the subtree rooted at dir, relative to the current directory.
func filterPackages(pkgs []*lint.Package, args []string, root string) ([]*lint.Package, error) {
	var prefixes []string
	for _, a := range args {
		a = strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/")
		if a == "." || a == "" {
			return pkgs, nil
		}
		abs, err := filepath.Abs(a)
		if err != nil {
			return nil, err
		}
		prefixes = append(prefixes, abs)
	}
	if len(prefixes) == 0 {
		return pkgs, nil
	}
	var out []*lint.Package
	for _, p := range pkgs {
		for _, pre := range prefixes {
			if p.Dir == pre || strings.HasPrefix(p.Dir, pre+string(filepath.Separator)) {
				out = append(out, p)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %s", strings.Join(args, " "))
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
