// Command sdflint runs the repository's custom static-analysis pass: the
// per-package determinism and overflow-safety analyzers of internal/lint
// (maporder, bannedcall, checkedmul, errattrib, exhaustive) plus the
// module-wide interprocedural analyzers (artifactmut, lockcheck, ctxleak,
// keycomplete) built on the callgraph. It is part of the tier-1 gate via
// `make lint`.
//
//	sdflint ./...              # lint the whole module (the default)
//	sdflint internal/sched     # restrict reporting to one directory subtree
//	sdflint -fast ./...        # per-package analyzers only (inner-loop speed)
//	sdflint -json ./...        # machine-readable diagnostics for CI
//	sdflint -ignores           # audit every //lint:ignore suppression
//	sdflint -list              # print the analyzers and exit
//
// Diagnostics are printed one per line as file:line:col: message (analyzer),
// with paths relative to the module root; -json emits the same findings as a
// JSON array of {file,line,col,analyzer,message}. Module-wide analyzers
// always inspect the whole module (their callgraph is global); directory
// arguments restrict which findings are *reported*. Exit status: 0 when
// clean, 1 when any diagnostic was reported (or, with -ignores, when a
// suppression targets an unknown analyzer), 2 on flag errors or when the
// module cannot be loaded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("sdflint", flag.ContinueOnError)
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	fast := fs.Bool("fast", false, "run only the per-package analyzers (skip the module-wide interprocedural pass)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	ignores := fs.Bool("ignores", false, "list every //lint:ignore suppression; fail on unknown analyzer names")
	if code := core.ParseCLI(fs, os.Args[1:]); code >= 0 {
		os.Exit(code)
	}
	if *list {
		for _, a := range lint.Analyzers() {
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = strings.Join(a.Packages, ", ")
			}
			mode := "package"
			if a.RunModule != nil {
				mode = "module"
			}
			fmt.Printf("%-12s %-7s %s [%s]\n", a.Name, mode, a.Doc, scope)
		}
		return
	}
	os.Exit(run(fs.Args(), *fast, *jsonOut, *ignores))
}

// jsonDiag is the machine-readable diagnostic shape CI consumes.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, fast, jsonOut, ignores bool) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdflint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdflint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdflint:", err)
		return 2
	}
	if ignores {
		return auditIgnores(loader, pkgs, root)
	}
	filtered, err := filterPackages(pkgs, args, root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdflint:", err)
		return 2
	}
	analyzers := lint.Analyzers()
	if fast {
		analyzers = lint.PackageAnalyzers()
	}
	// Per-package analyzers see only the filtered set; module analyzers need
	// the whole module for their callgraph, so they run over everything and
	// their findings are filtered to the requested subtrees afterwards.
	diags := lint.RunAll(lint.PackageAnalyzersOf(analyzers), loader, filtered)
	if !fast {
		diags = append(diags, filterDiags(lint.RunModuleAnalyzers(analyzers, loader, pkgs), filtered)...)
	}
	var out []jsonDiag
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			rel = r
		}
		if jsonOut {
			out = append(out, jsonDiag{File: rel, Line: d.Pos.Line, Col: d.Pos.Column, Analyzer: d.Analyzer, Message: d.Message})
			continue
		}
		d.Pos.Filename = rel
		fmt.Println(d)
	}
	if jsonOut {
		if out == nil {
			out = []jsonDiag{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "sdflint:", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sdflint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// auditIgnores prints every suppression in the module with its analyzer and
// reason, and fails when one targets an analyzer that does not exist — a
// stale ignore hides nothing but still claims an exemption.
func auditIgnores(loader *lint.Loader, pkgs []*lint.Package, root string) int {
	infos := lint.ListIgnores(loader.Fset, pkgs, lint.Analyzers())
	unknown := 0
	for _, ig := range infos {
		rel := ig.Pos.Filename
		if r, err := filepath.Rel(root, ig.Pos.Filename); err == nil {
			rel = r
		}
		status := ""
		if !ig.Known {
			status = "  [UNKNOWN ANALYZER]"
			unknown++
		}
		fmt.Printf("%s:%d: %s: %s%s\n", rel, ig.Pos.Line, ig.Analyzer, ig.Reason, status)
	}
	fmt.Fprintf(os.Stderr, "sdflint: %d suppression(s)\n", len(infos))
	if unknown > 0 {
		fmt.Fprintf(os.Stderr, "sdflint: %d suppression(s) target unknown analyzers\n", unknown)
		return 1
	}
	return 0
}

// filterDiags keeps diagnostics located inside one of the kept packages'
// directories.
func filterDiags(diags []lint.Diagnostic, pkgs []*lint.Package) []lint.Diagnostic {
	dirs := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		dirs[p.Dir] = true
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		if dirs[filepath.Dir(d.Pos.Filename)] {
			out = append(out, d)
		}
	}
	return out
}

// filterPackages narrows the loaded set to the requested directory subtrees.
// "./..." (and no arguments at all) means everything; "dir" and "dir/..."
// mean the subtree rooted at dir, relative to the current directory.
func filterPackages(pkgs []*lint.Package, args []string, root string) ([]*lint.Package, error) {
	var prefixes []string
	for _, a := range args {
		a = strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/")
		if a == "." || a == "" {
			return pkgs, nil
		}
		abs, err := filepath.Abs(a)
		if err != nil {
			return nil, err
		}
		prefixes = append(prefixes, abs)
	}
	if len(prefixes) == 0 {
		return pkgs, nil
	}
	var out []*lint.Package
	for _, p := range pkgs {
		for _, pre := range prefixes {
			if p.Dir == pre || strings.HasPrefix(p.Dir, pre+string(filepath.Separator)) {
				out = append(out, p)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %s", strings.Join(args, " "))
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
