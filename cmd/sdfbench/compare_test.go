package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/goldentest"
	"repro/internal/load"
)

func sampleReport(scale int64) *benchReport {
	return &benchReport{
		Date: "2026-01-01T00:00:00Z",
		Phases: []benchPhase{
			{Name: "table1", WallNS: 100_000 * scale},
			{Name: "fig27", WallNS: 900_000 * scale},
		},
		Table1Systems: []benchSystem{{System: "satrec", WallNS: 40_000 * scale}},
		Fig27:         []benchFig27{{Size: 50, Graphs: 10, WallNS: 500_000 * scale, NSPerGraph: 50_000 * scale}},
		MaxTokens:     []benchMaxTokens{{System: "satrec", LoopAwareNS: 2_000 * scale, FiringNS: 90_000 * scale}},
		Grid:          []benchGrid{{System: "cddat", Configs: 24, NaiveNS: 700_000 * scale, PlannedNS: 200_000 * scale}},
		Service: &benchService{Systems: []benchServiceSystem{
			{System: "cddat", ColdNS: 3_000_000 * scale, WarmNS: 80_000 * scale},
		}},
		Incremental:     &benchIncremental{Actors: 150, ColdNS: 5_000_000 * scale, WarmNS: 400_000 * scale},
		AllocFirstFitNS: 30_000 * scale,
	}
}

func writeReport(t *testing.T, rep *benchReport, name string) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareNoRegression(t *testing.T) {
	oldPath := writeReport(t, sampleReport(1), "old.json")
	newPath := writeReport(t, sampleReport(1), "new.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(oldPath, newPath, md, 1.25); code != 0 {
		t.Fatalf("identical reports: exit %d, want 0", code)
	}
	out, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	report := string(out)
	if !strings.Contains(report, "No regressions") {
		t.Errorf("report missing the no-regression verdict:\n%s", report)
	}
	for _, series := range []string{"table1", "size=50", "satrec/loop_aware", "cddat/planned", "cddat/warm", "incremental"} {
		if !strings.Contains(report, series) {
			t.Errorf("report missing series %q", series)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldPath := writeReport(t, sampleReport(1), "old.json")
	slow := sampleReport(1)
	slow.Incremental.WarmNS *= 3 // 3x warm-path regression
	newPath := writeReport(t, sampleReport(1), "unused.json")
	newPath = writeReport(t, slow, "new.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(oldPath, newPath, md, 1.25); code != 3 {
		t.Fatalf("3x regression: exit %d, want 3", code)
	}
	out, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "REGRESSION") || !strings.Contains(string(out), "incremental/warm") {
		t.Errorf("report does not flag the incremental/warm regression:\n%s", out)
	}
}

func TestCompareImprovementStaysGreen(t *testing.T) {
	oldPath := writeReport(t, sampleReport(3), "old.json")
	newPath := writeReport(t, sampleReport(1), "new.json")
	if code := runCompare(oldPath, newPath, "", 1.25); code != 0 {
		t.Fatalf("uniform 3x improvement: exit %d, want 0", code)
	}
}

func TestCompareSchemaSkew(t *testing.T) {
	// An old baseline with no incremental/service sections still compares
	// cleanly against a new report that has them.
	oldRep := sampleReport(1)
	oldRep.Incremental = nil
	oldRep.Service = nil
	oldPath := writeReport(t, oldRep, "old.json")
	newPath := writeReport(t, sampleReport(1), "new.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(oldPath, newPath, md, 1.25); code != 0 {
		t.Fatalf("schema skew: exit %d, want 0", code)
	}
	out, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "incremental") {
		t.Error("report compares an incremental section the old baseline lacks")
	}
}

func TestCompareBadInputs(t *testing.T) {
	good := writeReport(t, sampleReport(1), "good.json")
	if code := runCompare(filepath.Join(t.TempDir(), "missing.json"), good, "", 1.25); code != 1 {
		t.Error("missing old file should exit 1")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCompare(good, bad, "", 1.25); code != 1 {
		t.Error("malformed new file should exit 1")
	}
	if code := runCompare(good, good, "", 0.5); code != 2 {
		t.Error("threshold <= 1 should exit 2")
	}
}

func sampleLoadReport(latScale int64, kneeRPS float64) *load.Report {
	step := func(rps float64, p50, p99 int64) load.StepResult {
		var st load.StepResult
		st.TargetRPS = rps
		st.AchievedRPS = rps
		st.Sent, st.OK = 100, 100
		st.Latency.Count = 100
		st.Latency.P50, st.Latency.P90 = p50, (p50+p99)/2
		st.Latency.P99, st.Latency.P999, st.Latency.Max = p99, p99, p99
		return st
	}
	return &load.Report{
		Version: load.ReportVersion,
		Label:   "sample",
		Seed:    1,
		Workers: 8,
		Mix:     load.Mix{Cold: 1, Warm: 6, Edit: 2, Grid: 1},
		Steps: []load.StepResult{
			step(50, 2_000_000*latScale, 9_000_000*latScale),
			step(100, 3_000_000*latScale, 20_000_000*latScale),
		},
		Knee: load.Knee{RPS: kneeRPS, Saturated: false, Reason: "completed"},
	}
}

func writeLoadReport(t *testing.T, rep *load.Report, name string) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareLoadReports(t *testing.T) {
	oldPath := writeLoadReport(t, sampleLoadReport(1, 100), "old.json")
	newPath := writeLoadReport(t, sampleLoadReport(1, 100), "new.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(oldPath, newPath, md, 1.25); code != 0 {
		t.Fatalf("identical load reports: exit %d, want 0", code)
	}
	out, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	report := string(out)
	for _, want := range []string{"Load comparison", "50 rps/p50", "100 rps/p99", "sustained_rps"} {
		if !strings.Contains(report, want) {
			t.Errorf("load report comparison missing %q:\n%s", want, report)
		}
	}
}

func TestCompareLoadLatencyRegression(t *testing.T) {
	oldPath := writeLoadReport(t, sampleLoadReport(1, 100), "old.json")
	newPath := writeLoadReport(t, sampleLoadReport(3, 100), "new.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(oldPath, newPath, md, 1.25); code != 3 {
		t.Fatalf("3x latency regression: exit %d, want 3", code)
	}
}

func TestCompareLoadKneeRegression(t *testing.T) {
	// The knee dropping from 100 to 50 rps is a regression even though every
	// shared step's latency is unchanged: the throughput ratio inverts.
	oldPath := writeLoadReport(t, sampleLoadReport(1, 100), "old.json")
	newPath := writeLoadReport(t, sampleLoadReport(1, 50), "new.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(oldPath, newPath, md, 1.25); code != 3 {
		t.Fatalf("knee halved: exit %d, want 3", code)
	}
	out, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "knee/sustained_rps") {
		t.Errorf("knee regression not named:\n%s", out)
	}
	// A knee that RISES must stay green.
	better := writeLoadReport(t, sampleLoadReport(1, 200), "better.json")
	if code := runCompare(oldPath, better, "", 1.25); code != 0 {
		t.Error("knee doubling flagged as regression")
	}
}

func TestCompareMixedReportTypes(t *testing.T) {
	bench := writeReport(t, sampleReport(1), "bench.json")
	loadp := writeLoadReport(t, sampleLoadReport(1, 100), "load.json")
	if code := runCompare(bench, loadp, "", 1.25); code != 1 {
		t.Error("bench-vs-load should be an operational error (exit 1)")
	}
	if code := runCompare(loadp, bench, "", 1.25); code != 1 {
		t.Error("load-vs-bench should be an operational error (exit 1)")
	}
}

func TestCompareEmptySeriesOneSide(t *testing.T) {
	// A baseline with no sections at all shares nothing with a full report:
	// that is an operational error, not a silent green.
	empty := writeReport(t, &benchReport{Date: "2026-01-01"}, "empty.json")
	full := writeReport(t, sampleReport(1), "full.json")
	if code := runCompare(empty, full, "", 1.25); code != 1 {
		t.Error("no shared series should exit 1")
	}
	// An empty load baseline shares no steps; only the knee row remains,
	// incomparable (old side 0) — reported n/a, never a regression.
	emptyLoad := writeLoadReport(t, &load.Report{Version: load.ReportVersion}, "empty_load.json")
	fullLoad := writeLoadReport(t, sampleLoadReport(1, 100), "full_load.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(emptyLoad, fullLoad, md, 1.25); code != 0 {
		t.Errorf("empty load baseline: exit %d, want 0 (knee row incomparable)", code)
	}
	out, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "n/a") {
		t.Errorf("incomparable knee row not marked n/a:\n%s", out)
	}
}

func TestCompareZeroBaselineIncomparable(t *testing.T) {
	zero := sampleReport(1)
	zero.Phases[0].WallNS = 0 // dead series in the baseline
	oldPath := writeReport(t, zero, "old.json")
	newPath := writeReport(t, sampleReport(1), "new.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(oldPath, newPath, md, 1.25); code != 0 {
		t.Fatalf("zero baseline series: exit %d, want 0 (incomparable, not a regression)", code)
	}
	out, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "NaN") || strings.Contains(string(out), "Inf") {
		t.Errorf("zero baseline leaked NaN/Inf into the report:\n%s", out)
	}
	if !strings.Contains(string(out), "n/a") {
		t.Errorf("zero-baseline row not marked n/a:\n%s", out)
	}
}

func TestCompareGoldenMarkdown(t *testing.T) {
	// Pin the exact rendering: a regression, an improvement, and an
	// incomparable row in one deterministic bench comparison.
	oldRep := sampleReport(1)
	newRep := sampleReport(1)
	newRep.Incremental.WarmNS *= 3 // regression
	newRep.AllocFirstFitNS /= 2    // improvement
	oldRep.Phases[1].WallNS = 0    // n/a row
	md, _ := formatCompareMarkdown("Benchmark comparison", "old.json", "new.json",
		compareRows(oldRep, newRep), 1.25)
	goldentest.Compare(t, filepath.Join("testdata", "compare_bench.golden.md"), md)

	oldLoad := sampleLoadReport(1, 100)
	newLoad := sampleLoadReport(2, 50) // latency doubled, knee halved
	mdLoad, _ := formatCompareMarkdown("Load comparison", "old.json", "new.json",
		compareLoadRows(oldLoad, newLoad), 1.25)
	goldentest.Compare(t, filepath.Join("testdata", "compare_load.golden.md"), mdLoad)
}
