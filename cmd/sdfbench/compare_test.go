package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport(scale int64) *benchReport {
	return &benchReport{
		Date: "2026-01-01T00:00:00Z",
		Phases: []benchPhase{
			{Name: "table1", WallNS: 100_000 * scale},
			{Name: "fig27", WallNS: 900_000 * scale},
		},
		Table1Systems: []benchSystem{{System: "satrec", WallNS: 40_000 * scale}},
		Fig27:         []benchFig27{{Size: 50, Graphs: 10, WallNS: 500_000 * scale, NSPerGraph: 50_000 * scale}},
		MaxTokens:     []benchMaxTokens{{System: "satrec", LoopAwareNS: 2_000 * scale, FiringNS: 90_000 * scale}},
		Grid:          []benchGrid{{System: "cddat", Configs: 24, NaiveNS: 700_000 * scale, PlannedNS: 200_000 * scale}},
		Service: &benchService{Systems: []benchServiceSystem{
			{System: "cddat", ColdNS: 3_000_000 * scale, WarmNS: 80_000 * scale},
		}},
		Incremental:     &benchIncremental{Actors: 150, ColdNS: 5_000_000 * scale, WarmNS: 400_000 * scale},
		AllocFirstFitNS: 30_000 * scale,
	}
}

func writeReport(t *testing.T, rep *benchReport, name string) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareNoRegression(t *testing.T) {
	oldPath := writeReport(t, sampleReport(1), "old.json")
	newPath := writeReport(t, sampleReport(1), "new.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(oldPath, newPath, md, 1.25); code != 0 {
		t.Fatalf("identical reports: exit %d, want 0", code)
	}
	out, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	report := string(out)
	if !strings.Contains(report, "No regressions") {
		t.Errorf("report missing the no-regression verdict:\n%s", report)
	}
	for _, series := range []string{"table1", "size=50", "satrec/loop_aware", "cddat/planned", "cddat/warm", "incremental"} {
		if !strings.Contains(report, series) {
			t.Errorf("report missing series %q", series)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldPath := writeReport(t, sampleReport(1), "old.json")
	slow := sampleReport(1)
	slow.Incremental.WarmNS *= 3 // 3x warm-path regression
	newPath := writeReport(t, sampleReport(1), "unused.json")
	newPath = writeReport(t, slow, "new.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(oldPath, newPath, md, 1.25); code != 3 {
		t.Fatalf("3x regression: exit %d, want 3", code)
	}
	out, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "REGRESSION") || !strings.Contains(string(out), "incremental/warm") {
		t.Errorf("report does not flag the incremental/warm regression:\n%s", out)
	}
}

func TestCompareImprovementStaysGreen(t *testing.T) {
	oldPath := writeReport(t, sampleReport(3), "old.json")
	newPath := writeReport(t, sampleReport(1), "new.json")
	if code := runCompare(oldPath, newPath, "", 1.25); code != 0 {
		t.Fatalf("uniform 3x improvement: exit %d, want 0", code)
	}
}

func TestCompareSchemaSkew(t *testing.T) {
	// An old baseline with no incremental/service sections still compares
	// cleanly against a new report that has them.
	oldRep := sampleReport(1)
	oldRep.Incremental = nil
	oldRep.Service = nil
	oldPath := writeReport(t, oldRep, "old.json")
	newPath := writeReport(t, sampleReport(1), "new.json")
	md := filepath.Join(t.TempDir(), "report.md")
	if code := runCompare(oldPath, newPath, md, 1.25); code != 0 {
		t.Fatalf("schema skew: exit %d, want 0", code)
	}
	out, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "incremental") {
		t.Error("report compares an incremental section the old baseline lacks")
	}
}

func TestCompareBadInputs(t *testing.T) {
	good := writeReport(t, sampleReport(1), "good.json")
	if code := runCompare(filepath.Join(t.TempDir(), "missing.json"), good, "", 1.25); code != 1 {
		t.Error("missing old file should exit 1")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCompare(good, bad, "", 1.25); code != 1 {
		t.Error("malformed new file should exit 1")
	}
	if code := runCompare(good, good, "", 0.5); code != 2 {
		t.Error("threshold <= 1 should exit 2")
	}
}
