// Command sdfbench regenerates the tables and figures of the paper's
// evaluation section:
//
//	sdfbench -experiment table1        # Table 1 + Fig. 25 on practical systems
//	sdfbench -experiment fig27         # random-graph study (Fig. 27 a-f)
//	sdfbench -experiment randomsort    # Sec. 10.1 random topological sorts
//	sdfbench -experiment homogeneous   # Sec. 10.2 / Fig. 26
//	sdfbench -experiment sdppo-vs-dppo # Sec. 10.1 looping ablation
//	sdfbench -experiment satrec        # Sec. 11 comparisons
//	sdfbench -experiment cddat         # Sec. 11.1.3 input buffering
//	sdfbench -experiment dynamic       # Sec. 11.1.3 data-driven scheduling
//	sdfbench -experiment merging       # Sec. 12 buffer-merging extension
//	sdfbench -experiment tradeoff      # code-size vs buffer-memory frontier
//	sdfbench -experiment exact         # heuristics vs exhaustive optimum
//	sdfbench -experiment all
//
// -quick reduces population sizes for a fast smoke run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/sdf"
	"repro/internal/systems"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "which experiment to run")
		quick   = flag.Bool("quick", false, "reduced population sizes")
		seed    = flag.Int64("seed", 2000, "random seed for stochastic studies")
		jsonOut = flag.Bool("json", false, "emit results as JSON instead of tables")
	)
	flag.Parse()

	emit := func(name string, v interface{}, text func() string) {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]interface{}{"experiment": name, "results": v}); err != nil {
				fmt.Fprintln(os.Stderr, "sdfbench:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Print(text())
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if !*jsonOut {
			fmt.Printf("==== %s ====\n", name)
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "sdfbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	run("table1", func() error {
		rows, err := experiments.DefaultTable1()
		if err != nil {
			return err
		}
		emit("table1", rows, func() string {
			return experiments.FormatTable1(rows) + "\n" + experiments.FormatFig25(rows)
		})
		return nil
	})

	run("fig27", func() error {
		cfg := experiments.DefaultFig27Config()
		cfg.Seed = *seed
		if *quick {
			cfg = experiments.Fig27Config{Sizes: []int{20, 50}, PerSize: 10, Seed: *seed}
		}
		pts, err := experiments.Fig27(cfg)
		if err != nil {
			return err
		}
		emit("fig27", pts, func() string { return experiments.FormatFig27(pts) })
		return nil
	})

	run("randomsort", func() error {
		small := 1000
		large := 100
		if *quick {
			small, large = 50, 5
		}
		var results []experiments.RandomSortResult
		for _, j := range []struct {
			name   string
			trials int
		}{
			{"satrec", small},
			{"blockVox", small},
			{"qmf12_5d", large},
			{"qmf235_5d", large},
		} {
			g := mustSystem(j.name)
			r, err := experiments.RandomSort(g, j.trials, *seed)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		emit("randomsort", results, func() string { return experiments.FormatRandomSort(results) })
		return nil
	})

	run("homogeneous", func() error {
		rows, err := experiments.Homogeneous([]int{2, 4, 8}, []int{4, 8, 16})
		if err != nil {
			return err
		}
		emit("homogeneous", rows, func() string { return experiments.FormatHomogeneous(rows) })
		return nil
	})

	run("sdppo-vs-dppo", func() error {
		rows, err := experiments.SdppoVsDppo(systems.Table1Systems())
		if err != nil {
			return err
		}
		emit("sdppo-vs-dppo", rows, func() string { return experiments.FormatSdppoVsDppo(rows) })
		return nil
	})

	run("satrec", func() error {
		cmp, err := experiments.Satrec()
		if err != nil {
			return err
		}
		emit("satrec", cmp, func() string { return experiments.FormatSatrec(cmp) })
		return nil
	})

	run("cddat", func() error {
		rows, err := experiments.CDDAT()
		if err != nil {
			return err
		}
		emit("cddat", rows, func() string { return experiments.FormatCDDAT(rows) })
		return nil
	})

	run("dynamic", func() error {
		rows, err := experiments.DynamicVsStatic(systems.Table1Systems())
		if err != nil {
			return err
		}
		emit("dynamic", rows, func() string { return experiments.FormatDynamic(rows) })
		return nil
	})

	run("tradeoff", func() error {
		rows, err := experiments.Tradeoff(systems.Table1Systems())
		if err != nil {
			return err
		}
		emit("tradeoff", rows, func() string { return experiments.FormatTradeoff(rows) })
		return nil
	})

	run("exact", func() error {
		n := 20
		if *quick {
			n = 6
		}
		rows, err := experiments.ExactStudy(
			[]*sdf.Graph{systems.OverAddFFT(), systems.PAM4TransmitRecv()}, n, 100_000, *seed)
		if err != nil {
			return err
		}
		emit("exact", rows, func() string { return experiments.FormatExact(rows) })
		return nil
	})

	run("merging", func() error {
		rows, err := experiments.Merging(systems.Table1Systems())
		if err != nil {
			return err
		}
		emit("merging", rows, func() string { return experiments.FormatMerging(rows) })
		return nil
	})
}

func mustSystem(name string) *sdf.Graph {
	for _, g := range systems.Table1Systems() {
		if g.Name == name {
			return g
		}
	}
	fmt.Fprintf(os.Stderr, "sdfbench: unknown system %q\n", name)
	os.Exit(1)
	return nil
}
