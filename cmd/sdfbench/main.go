// Command sdfbench regenerates the tables and figures of the paper's
// evaluation section:
//
//	sdfbench -experiment table1        # Table 1 + Fig. 25 on practical systems
//	sdfbench -experiment fig27         # random-graph study (Fig. 27 a-f)
//	sdfbench -experiment randomsort    # Sec. 10.1 random topological sorts
//	sdfbench -experiment homogeneous   # Sec. 10.2 / Fig. 26
//	sdfbench -experiment sdppo-vs-dppo # Sec. 10.1 looping ablation
//	sdfbench -experiment satrec        # Sec. 11 comparisons
//	sdfbench -experiment cddat         # Sec. 11.1.3 input buffering
//	sdfbench -experiment dynamic       # Sec. 11.1.3 data-driven scheduling
//	sdfbench -experiment merging       # Sec. 12 buffer-merging extension
//	sdfbench -experiment tradeoff      # code-size vs buffer-memory frontier
//	sdfbench -experiment exact         # heuristics vs exhaustive optimum
//	sdfbench -experiment parallel      # partitioned memory vs worker count P
//	sdfbench -experiment all
//
// -quick reduces population sizes for a fast smoke run.
//
// With -json, results go to stdout as JSON and a benchmark trajectory file
// BENCH_<date>.json (per-phase wall times, per-system and per-population
// ns/op, loop-aware vs firing-expansion simulator micro timings) is written
// so successive PRs can track performance regressions; -out overrides the
// file path (a stable name, e.g. -out BENCH_baseline.json, lets CI find it
// without globbing; -benchout is a deprecated alias).
//
// sdfbench -compare old.json new.json diffs two trajectory files — or two
// LOAD_*.json saturation reports from sdfload — and gates on a regression
// threshold; see compare.go.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/nodestore"
	"repro/internal/par"
	"repro/internal/pass"
	"repro/internal/randsdf"
	"repro/internal/regularity"
	"repro/internal/sdf"
	"repro/internal/systems"

	"math/rand"
)

// benchSchema versions the BENCH_<date>.json trajectory file. Bump it when a
// section's meaning changes (not when sections are added — -compare already
// ignores sections the other file lacks).
const benchSchema = "sdfbench/v2"

// benchReport is the schema of the BENCH_<date>.json trajectory file.
type benchReport struct {
	Schema     string       `json:"schema"`
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Quick      bool         `json:"quick"`
	Seed       int64        `json:"seed"`
	Phases     []benchPhase `json:"phases"`
	// Table1Systems is the single-run wall time of the full shared pipeline
	// per practical system.
	Table1Systems []benchSystem `json:"table1_systems,omitempty"`
	// Fig27 is the wall time per random-graph population.
	Fig27 []benchFig27 `json:"fig27,omitempty"`
	// MaxTokens compares the loop-aware token simulation against the
	// firing-expansion oracle per system (the tentpole speedup).
	MaxTokens []benchMaxTokens `json:"max_tokens,omitempty"`
	// AllocFirstFitNS times first-fit allocation on a 150-actor random
	// graph's lifetime intervals.
	AllocFirstFitNS int64 `json:"alloc_first_fit_ns,omitempty"`
	// Grid compares the prefix-sharing plan executor against naive
	// per-configuration compilation over the full option grid on the six
	// example systems.
	Grid []benchGrid `json:"grid,omitempty"`
	// Service benchmarks the sdfd daemon over a loopback listener: cold vs
	// warm compile latency per system and warm requests/sec at saturation.
	Service *benchService `json:"service,omitempty"`
	// Incremental measures the persistent pass-node store on the
	// single-actor-edit scenario: cold compile of a 150-actor random graph
	// into an empty store versus warm recompile after renaming one actor.
	Incremental *benchIncremental `json:"incremental,omitempty"`
	// Parallel tracks the partitioned runtime per (system, P): the segmented
	// image's memory ratio over the sequential shared total, and wall time
	// per period of the barrier-phased engine against the sequential engine
	// with synthetic per-firing work.
	Parallel []benchParallel `json:"parallel,omitempty"`
}

type benchPhase struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
}

type benchSystem struct {
	System string `json:"system"`
	WallNS int64  `json:"wall_ns"`
}

type benchFig27 struct {
	Size       int   `json:"size"`
	Graphs     int   `json:"graphs"`
	WallNS     int64 `json:"wall_ns"`
	NSPerGraph int64 `json:"ns_per_graph"`
}

type benchMaxTokens struct {
	System      string  `json:"system"`
	LoopAwareNS int64   `json:"loop_aware_ns"`
	FiringNS    int64   `json:"firing_ns"`
	Speedup     float64 `json:"speedup"`
}

type benchGrid struct {
	System  string `json:"system"`
	Configs int    `json:"configs"`
	// NaiveNS compiles every grid point with core.Compile, one full pipeline
	// each; PlannedNS runs the same points as one prefix-sharing plan.
	NaiveNS   int64   `json:"naive_ns"`
	PlannedNS int64   `json:"planned_ns"`
	Speedup   float64 `json:"speedup"`
	// PlannedNodes/NaiveNodes count executed pass nodes with and without
	// deduplication — the structural (machine-independent) sharing win.
	PlannedNodes int `json:"planned_nodes"`
	NaiveNodes   int `json:"naive_nodes"`
}

type benchIncremental struct {
	Actors int `json:"actors"`
	// ColdNS is one full compile into an empty store; WarmNS recompiles
	// after a single-actor rename against the populated store.
	ColdNS int64 `json:"cold_ns"`
	WarmNS int64 `json:"warm_ns"`
	// Executed/loaded pass-node counts: the machine-independent work ratio.
	ColdExecuted int     `json:"cold_executed_nodes"`
	WarmExecuted int     `json:"warm_executed_nodes"`
	WarmLoaded   int     `json:"warm_loaded_nodes"`
	WorkRatio    float64 `json:"work_ratio"` // cold executed / warm executed
	Speedup      float64 `json:"speedup"`    // cold ns / warm ns
}

type benchParallel struct {
	System         string  `json:"system"`
	Workers        int     `json:"workers"`
	Phases         int     `json:"phases"`
	SegmentedTotal int64   `json:"segmented_total"`
	MemoryRatio    float64 `json:"memory_ratio"`
	SeqNS          int64   `json:"seq_ns"`
	PhasedNS       int64   `json:"phased_ns"`
	Speedup        float64 `json:"speedup"`
}

func main() {
	fs := flag.NewFlagSet("sdfbench", flag.ContinueOnError)
	var (
		exp       = fs.String("experiment", "all", "which experiment to run")
		quick     = fs.Bool("quick", false, "reduced population sizes")
		seed      = fs.Int64("seed", 2000, "random seed for stochastic studies")
		jsonOut   = fs.Bool("json", false, "emit results as JSON and write a BENCH_<date>.json trajectory")
		out       = fs.String("out", "", "trajectory file path (default BENCH_<date>.json; implies nothing unless -json)")
		benchOut  = fs.String("benchout", "", "deprecated alias for -out")
		compare   = fs.Bool("compare", false, "compare two trajectory files (sdfbench -compare old.json new.json) instead of running experiments")
		threshold = fs.Float64("threshold", 1.25, "for -compare: flag a regression when new/old wall time exceeds this ratio")
		mdOut     = fs.String("md", "", "for -compare: write the markdown report to this file (default stdout)")
	)
	if code := core.ParseCLI(fs, os.Args[1:]); code >= 0 {
		os.Exit(code)
	}

	if *compare {
		args := fs.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "sdfbench: -compare needs exactly two trajectory files: sdfbench -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(args[0], args[1], *mdOut, *threshold))
	}

	report := &benchReport{
		Schema:     benchSchema,
		Date:       time.Now().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Seed:       *seed,
	}

	emit := func(name string, v interface{}, text func() string) {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]interface{}{"experiment": name, "results": v}); err != nil {
				fmt.Fprintln(os.Stderr, "sdfbench:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Print(text())
	}

	ran := 0
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		ran++
		start := time.Now()
		if !*jsonOut {
			fmt.Printf("==== %s ====\n", name)
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "sdfbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		report.Phases = append(report.Phases, benchPhase{Name: name, WallNS: elapsed.Nanoseconds()})
		if !*jsonOut {
			fmt.Printf("(%s in %v)\n\n", name, elapsed.Round(time.Millisecond))
		}
	}

	run("table1", func() error {
		rows, err := experiments.DefaultTable1()
		if err != nil {
			return err
		}
		if *jsonOut {
			// Per-system trajectory: one timed sequential pass each, so the
			// numbers are comparable across machines with different core
			// counts.
			for _, g := range systems.Table1Systems() {
				start := time.Now()
				if _, err := experiments.Table1([]*sdf.Graph{g}); err != nil {
					return err
				}
				report.Table1Systems = append(report.Table1Systems,
					benchSystem{System: g.Name, WallNS: time.Since(start).Nanoseconds()})
			}
		}
		emit("table1", rows, func() string {
			return experiments.FormatTable1(rows) + "\n" + experiments.FormatFig25(rows)
		})
		return nil
	})

	run("fig27", func() error {
		cfg := experiments.DefaultFig27Config()
		cfg.Seed = *seed
		if *quick {
			cfg = experiments.Fig27Config{Sizes: []int{20, 50}, PerSize: 10, Seed: *seed}
		}
		cfg.OnSizeTimed = func(size, graphs int, elapsed time.Duration) {
			report.Fig27 = append(report.Fig27, benchFig27{
				Size: size, Graphs: graphs,
				WallNS:     elapsed.Nanoseconds(),
				NSPerGraph: elapsed.Nanoseconds() / int64(graphs),
			})
		}
		pts, err := experiments.Fig27(cfg)
		if err != nil {
			return err
		}
		emit("fig27", pts, func() string { return experiments.FormatFig27(pts) })
		return nil
	})

	run("randomsort", func() error {
		small := 1000
		large := 100
		if *quick {
			small, large = 50, 5
		}
		jobs := []struct {
			name   string
			trials int
		}{
			{"satrec", small},
			{"blockVox", small},
			{"qmf12_5d", large},
			{"qmf235_5d", large},
		}
		results, err := par.Map(len(jobs), func(i int) (experiments.RandomSortResult, error) {
			return experiments.RandomSort(mustSystem(jobs[i].name), jobs[i].trials, *seed)
		})
		if err != nil {
			return err
		}
		emit("randomsort", results, func() string { return experiments.FormatRandomSort(results) })
		return nil
	})

	run("homogeneous", func() error {
		rows, err := experiments.Homogeneous([]int{2, 4, 8}, []int{4, 8, 16})
		if err != nil {
			return err
		}
		emit("homogeneous", rows, func() string { return experiments.FormatHomogeneous(rows) })
		return nil
	})

	run("sdppo-vs-dppo", func() error {
		rows, err := experiments.SdppoVsDppo(systems.Table1Systems())
		if err != nil {
			return err
		}
		emit("sdppo-vs-dppo", rows, func() string { return experiments.FormatSdppoVsDppo(rows) })
		return nil
	})

	run("satrec", func() error {
		cmp, err := experiments.Satrec()
		if err != nil {
			return err
		}
		emit("satrec", cmp, func() string { return experiments.FormatSatrec(cmp) })
		return nil
	})

	run("cddat", func() error {
		rows, err := experiments.CDDAT()
		if err != nil {
			return err
		}
		emit("cddat", rows, func() string { return experiments.FormatCDDAT(rows) })
		return nil
	})

	run("dynamic", func() error {
		rows, err := experiments.DynamicVsStatic(systems.Table1Systems())
		if err != nil {
			return err
		}
		emit("dynamic", rows, func() string { return experiments.FormatDynamic(rows) })
		return nil
	})

	run("tradeoff", func() error {
		rows, err := experiments.Tradeoff(systems.Table1Systems())
		if err != nil {
			return err
		}
		emit("tradeoff", rows, func() string { return experiments.FormatTradeoff(rows) })
		return nil
	})

	run("exact", func() error {
		n := 20
		if *quick {
			n = 6
		}
		rows, err := experiments.ExactStudy(
			[]*sdf.Graph{systems.OverAddFFT(), systems.PAM4TransmitRecv()}, n, 100_000, *seed)
		if err != nil {
			return err
		}
		emit("exact", rows, func() string { return experiments.FormatExact(rows) })
		return nil
	})

	run("parallel", func() error {
		rows, err := experiments.ParallelMemory(systems.Table1Systems(), []int{2, 4})
		if err != nil {
			return err
		}
		emit("parallel", rows, func() string { return experiments.FormatParallel(rows) })
		return nil
	})

	run("merging", func() error {
		rows, err := experiments.Merging(systems.Table1Systems())
		if err != nil {
			return err
		}
		emit("merging", rows, func() string { return experiments.FormatMerging(rows) })
		return nil
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sdfbench: unknown experiment %q (see -h for the list)\n", *exp)
		os.Exit(2)
	}

	if *jsonOut {
		path := *out
		if path == "" {
			path = *benchOut // deprecated alias; -out wins when both are set
		}
		if err := writeBenchFile(report, path, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "sdfbench: bench trajectory:", err)
			os.Exit(1)
		}
	}
}

// writeBenchFile appends the simulator and allocator micro timings to the
// report and writes it to path (default BENCH_<date>.json).
func writeBenchFile(report *benchReport, path string, quick bool) error {
	microBudget := 50 * time.Millisecond
	graphs := systems.Table1Systems()
	if quick {
		microBudget = 5 * time.Millisecond
		// Keep the heavily multirate systems — the regime the loop-aware
		// simulator targets — so even a quick trajectory file tracks the
		// speedup that matters.
		multirate := map[string]bool{
			"satrec": true, "qmf235_5d": true, "phasedArray": true, "qmf235_3d": true,
		}
		var sub []*sdf.Graph
		for _, g := range graphs {
			if multirate[g.Name] {
				sub = append(sub, g)
			}
		}
		graphs = sub
	}
	for _, g := range graphs {
		res, err := core.Compile(g, core.Options{Strategy: core.APGAN, Looping: core.SDPPOLoops})
		if err != nil {
			return err
		}
		s := res.Schedule
		la := timeNsPerOp(microBudget, func() {
			if _, err := s.SimulateLoopAware(); err != nil {
				panic(err)
			}
		})
		fe := timeNsPerOp(microBudget, func() {
			if _, err := s.SimulateByExpansion(); err != nil {
				panic(err)
			}
		})
		m := benchMaxTokens{System: g.Name, LoopAwareNS: la, FiringNS: fe}
		if la > 0 {
			m.Speedup = float64(fe) / float64(la)
		}
		report.MaxTokens = append(report.MaxTokens, m)
	}

	g := randsdf.Graph(rand.New(rand.NewSource(150)), randsdf.Config{Actors: 150})
	res, err := core.Compile(g, core.Options{})
	if err != nil {
		return err
	}
	report.AllocFirstFitNS = timeNsPerOp(microBudget, func() {
		alloc.Allocate(res.Intervals, alloc.FirstFitDuration)
	})

	if err := benchGridSection(report, microBudget); err != nil {
		return err
	}

	if err := benchIncrementalSection(report); err != nil {
		return err
	}

	if err := benchParallelSection(report, microBudget, quick); err != nil {
		return err
	}

	svc, err := benchServiceSection(quick)
	if err != nil {
		return err
	}
	report.Service = svc

	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "sdfbench: wrote", path)
	return nil
}

// benchGridSection times the full (strategy x looping x allocator) grid —
// one single-allocator point per combination, 24 points — on the six example
// systems, compiled naively (core.Compile per point, sequential, each point a
// full pipeline) and as one prefix-sharing plan (shared passes, parallel
// branches). The speedup trajectory is the tentpole's headline number.
func benchGridSection(report *benchReport, budget time.Duration) error {
	points := gridPoints()
	for _, g := range gridSystems() {
		// One dry run of both paths: surfaces compile errors before timing and
		// yields the structural node counts.
		plan, err := pass.NewPlan(g, points, pass.PlanConfig{})
		if err != nil {
			return fmt.Errorf("grid %s: %w", g.Name, err)
		}
		row := benchGrid{System: g.Name, Configs: len(points)}
		for _, kc := range plan.Stats() {
			row.PlannedNodes += kc.Nodes
			row.NaiveNodes += kc.Naive
		}
		for _, pt := range points {
			if _, err := core.Compile(g, pt); err != nil {
				return fmt.Errorf("grid %s: %w", g.Name, err)
			}
		}
		row.NaiveNS = timeNsPerOp(budget, func() {
			for _, pt := range points {
				if _, err := core.Compile(g, pt); err != nil {
					panic(err)
				}
			}
		})
		row.PlannedNS = timeNsPerOp(budget, func() {
			if _, err := pass.RunGrid(context.Background(), g, points, pass.PlanConfig{}); err != nil {
				panic(err)
			}
		})
		if row.PlannedNS > 0 {
			row.Speedup = float64(row.NaiveNS) / float64(row.PlannedNS)
		}
		report.Grid = append(report.Grid, row)
	}
	return nil
}

// benchIncrementalSection times the persistent pass-node store on the
// paper-pipeline edit loop: compile a 150-actor random graph cold (empty
// store, every pass executes), rename one actor, recompile warm. Actor
// names appear in no store key and no stored payload, so the warm run loads
// every pipeline stage from the store and executes only the final assembly
// — the work ratio is structural (executed-node counts), the speedup is
// this machine's wall-time echo of it.
func benchIncrementalSection(report *benchReport) error {
	const actors = 150
	g := randsdf.Graph(rand.New(rand.NewSource(151)), randsdf.Config{Actors: actors})
	dir, err := os.MkdirTemp("", "sdfbench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := nodestore.Open(dir, 256<<20)
	if err != nil {
		return err
	}
	points := []pass.Options{{}}

	runOnce := func(g *sdf.Graph) (time.Duration, []pass.KindCount, error) {
		start := time.Now()
		plan, err := pass.NewPlan(g, points, pass.PlanConfig{Store: st})
		if err != nil {
			return 0, nil, err
		}
		outs := plan.Run(context.Background())
		elapsed := time.Since(start)
		if outs[0].Err != nil {
			return 0, nil, outs[0].Err
		}
		return elapsed, plan.Stats(), nil
	}

	cold, coldStats, err := runOnce(g)
	if err != nil {
		return fmt.Errorf("incremental cold: %w", err)
	}

	// The edit: rename one actor, rebuild, recompile.
	edited := sdf.New(g.Name)
	for i, a := range g.Actors() {
		name := a.Name
		if i == 0 {
			name = "renamed_" + name
		}
		edited.AddActor(name)
	}
	for _, e := range g.Edges() {
		id := edited.AddEdge(e.Src, e.Dst, e.Prod, e.Cons, e.Delay)
		edited.SetWords(id, e.Words)
	}

	warm, warmStats, err := runOnce(edited)
	if err != nil {
		return fmt.Errorf("incremental warm: %w", err)
	}
	// A few more warm runs, keeping the fastest: the first one pays cold
	// page-cache and allocator noise that is not the store's cost.
	for i := 0; i < 4; i++ {
		again, _, err := runOnce(edited)
		if err != nil {
			return fmt.Errorf("incremental warm: %w", err)
		}
		if again < warm {
			warm = again
		}
	}

	inc := &benchIncremental{Actors: actors, ColdNS: cold.Nanoseconds(), WarmNS: warm.Nanoseconds()}
	for _, kc := range coldStats {
		inc.ColdExecuted += kc.Executed
	}
	for _, kc := range warmStats {
		inc.WarmExecuted += kc.Executed
		inc.WarmLoaded += kc.Loaded
	}
	if inc.WarmExecuted > 0 {
		inc.WorkRatio = float64(inc.ColdExecuted) / float64(inc.WarmExecuted)
	}
	if inc.WarmNS > 0 {
		inc.Speedup = float64(inc.ColdNS) / float64(inc.WarmNS)
	}
	report.Incremental = inc
	return nil
}

// benchParallelSection tracks the partitioned runtime on two multirate
// systems: per worker count, the segmented image's memory price and the
// barrier-phased engine's wall time per period against the sequential engine.
// Each firing burns a fixed arithmetic loop so the barrier cost is weighed
// against actor work the way a deployment would see it; the speedup
// trajectory catches both barrier regressions and segment-routing bloat.
func benchParallelSection(report *benchReport, budget time.Duration, quick bool) error {
	workers := []int{2, 4}
	const workIters = 256
	graphs := []*sdf.Graph{systems.SatelliteReceiver(), systems.CDDAT()}
	if quick {
		graphs = graphs[:1]
	}
	for _, g := range graphs {
		mem, err := experiments.ParallelMemory([]*sdf.Graph{g}, workers)
		if err != nil {
			return err
		}
		sp, err := experiments.ParallelSpeedup(g, workers, workIters, budget)
		if err != nil {
			return err
		}
		for i, pt := range mem[0].Points {
			row := benchParallel{
				System:         g.Name,
				Workers:        pt.Workers,
				Phases:         pt.Phases,
				SegmentedTotal: pt.SegmentedTotal,
				MemoryRatio:    pt.MemoryRatio,
				SeqNS:          sp.SeqNS,
			}
			if i < len(sp.Points) {
				row.PhasedNS = sp.Points[i].WallNS
				row.Speedup = sp.Points[i].Speedup
			}
			report.Parallel = append(report.Parallel, row)
		}
	}
	return nil
}

// gridPoints enumerates the full grid with one allocator per point, so the
// naive path pays one compilation per (order, looping, allocator) triple and
// the planner gets the widest allocator fan-out to share lifetimes across.
func gridPoints() []pass.Options {
	var pts []pass.Options
	for _, strat := range []core.OrderStrategy{core.APGAN, core.RPMC} {
		for _, la := range []core.LoopAlg{core.SDPPOLoops, core.DPPOLoops, core.ChainPreciseLoops, core.FlatLoops} {
			for _, a := range []alloc.Strategy{alloc.FirstFitDuration, alloc.FirstFitStart, alloc.BestFitDuration} {
				pts = append(pts, pass.Options{
					Strategy: strat, Looping: la, Allocators: []alloc.Strategy{a},
				})
			}
		}
	}
	return pts
}

// gridSystems is the six-system example set the service quickstart uses.
func gridSystems() []*sdf.Graph {
	quick := sdf.New("quickstart")
	a := quick.AddActor("A")
	b := quick.AddActor("B")
	c := quick.AddActor("C")
	quick.AddEdge(a, b, 3, 2, 0)
	quick.AddEdge(b, c, 5, 7, 0)
	return []*sdf.Graph{
		quick,
		regularity.FIR(8),
		systems.OneSidedFilterbank(4, systems.Ratio23),
		systems.SatelliteReceiver(),
		systems.Homogeneous(4, 4),
		systems.CDDAT(),
	}
}

// timeNsPerOp measures f's per-call wall time, doubling the iteration count
// until the measurement spans the budget.
func timeNsPerOp(budget time.Duration, f func()) int64 {
	f() // warm-up
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed >= budget || n >= 1<<24 {
			return elapsed.Nanoseconds() / int64(n)
		}
		n *= 2
	}
}

func mustSystem(name string) *sdf.Graph {
	for _, g := range systems.Table1Systems() {
		if g.Name == name {
			return g
		}
	}
	fmt.Fprintf(os.Stderr, "sdfbench: unknown system %q\n", name)
	os.Exit(1)
	return nil
}
