package main

// sdfbench -compare old.json new.json: diff two BENCH_*.json trajectory
// files phase by phase and system by system — or two LOAD_*.json saturation
// reports from sdfload (recognized by their "version":"load/..." field) —
// render a markdown report, and gate on a regression threshold so CI (or a
// human before merging) can tell "this PR made the pipeline slower" from
// noise.
//
// Exit codes: 0 no regressions, 1 operational error (unreadable or
// malformed file, or mixing a load report with a bench trajectory), 3 at
// least one comparable series regressed beyond the threshold. Only series
// present in BOTH files are compared — growing the trajectory schema never
// breaks old baselines.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/load"
)

// compareRow is one comparable series across the two reports: a wall-time
// series (OldNS/NewNS, lower is better) or, with HigherBetter set, a
// throughput series (OldRPS/NewRPS — the saturation knee).
type compareRow struct {
	Section string
	Key     string
	OldNS   int64
	NewNS   int64
	// HigherBetter marks a throughput series carried in OldRPS/NewRPS; its
	// ratio inverts so that >1 still reads "worse".
	HigherBetter   bool
	OldRPS, NewRPS float64
}

// ratio normalizes both series kinds so that ratio > threshold always means
// regression: new/old for wall times, old/new for throughput. 0 when the
// baseline side is empty (incomparable).
func (r compareRow) ratio() float64 {
	if r.HigherBetter {
		if r.NewRPS <= 0 {
			return 0
		}
		return r.OldRPS / r.NewRPS
	}
	if r.OldNS <= 0 {
		return 0
	}
	return float64(r.NewNS) / float64(r.OldNS)
}

// values renders both sides for the markdown table.
func (r compareRow) values() (string, string) {
	if r.HigherBetter {
		return fmt.Sprintf("%.4g rps", r.OldRPS), fmt.Sprintf("%.4g rps", r.NewRPS)
	}
	return formatNS(r.OldNS), formatNS(r.NewNS)
}

func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// isLoadReport sniffs whether path holds a sdfload LOAD_*.json report
// (version "load/...") rather than a bench trajectory.
func isLoadReport(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var sniff struct {
		Version string `json:"version"`
	}
	if err := json.Unmarshal(data, &sniff); err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	return strings.HasPrefix(sniff.Version, "load/"), nil
}

func loadLoadReport(path string) (*load.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep load.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Version != load.ReportVersion {
		return nil, fmt.Errorf("%s: load report version %q, this sdfbench understands %q",
			path, rep.Version, load.ReportVersion)
	}
	return &rep, nil
}

// compareLoadRows pairs the two saturation reports: per shared ramp step
// (matched by offered RPS) the open-loop p50/p99, and the sustained knee
// RPS as a higher-is-better throughput row. Violating steps are excluded —
// their latency measures where the knee is, not how fast the server runs.
func compareLoadRows(oldRep, newRep *load.Report) []compareRow {
	var rows []compareRow
	newSteps := map[float64]load.StepResult{}
	for _, st := range newRep.Steps {
		if len(st.Violations) == 0 {
			newSteps[st.TargetRPS] = st
		}
	}
	for _, st := range oldRep.Steps {
		if len(st.Violations) > 0 {
			continue
		}
		n, ok := newSteps[st.TargetRPS]
		if !ok {
			continue
		}
		key := fmt.Sprintf("%.4g rps", st.TargetRPS)
		rows = append(rows,
			compareRow{Section: "step", Key: key + "/p50", OldNS: st.Latency.P50, NewNS: n.Latency.P50},
			compareRow{Section: "step", Key: key + "/p99", OldNS: st.Latency.P99, NewNS: n.Latency.P99},
		)
	}
	if oldRep.Knee.RPS > 0 || newRep.Knee.RPS > 0 {
		rows = append(rows, compareRow{
			Section: "knee", Key: "sustained_rps",
			HigherBetter: true, OldRPS: oldRep.Knee.RPS, NewRPS: newRep.Knee.RPS,
		})
	}
	return rows
}

// compareRows pairs every wall-time series the two reports share. Keys are
// stable names, so rows line up even when the experiment order changed.
func compareRows(oldRep, newRep *benchReport) []compareRow {
	var rows []compareRow
	add := func(section, key string, oldNS, newNS int64, ok bool) {
		if ok {
			rows = append(rows, compareRow{Section: section, Key: key, OldNS: oldNS, NewNS: newNS})
		}
	}

	newPhase := map[string]int64{}
	for _, p := range newRep.Phases {
		newPhase[p.Name] = p.WallNS
	}
	for _, p := range oldRep.Phases {
		ns, ok := newPhase[p.Name]
		add("phase", p.Name, p.WallNS, ns, ok)
	}

	newSys := map[string]int64{}
	for _, s := range newRep.Table1Systems {
		newSys[s.System] = s.WallNS
	}
	for _, s := range oldRep.Table1Systems {
		ns, ok := newSys[s.System]
		add("table1", s.System, s.WallNS, ns, ok)
	}

	newFig := map[int]int64{}
	for _, f := range newRep.Fig27 {
		newFig[f.Size] = f.NSPerGraph
	}
	for _, f := range oldRep.Fig27 {
		ns, ok := newFig[f.Size]
		add("fig27", fmt.Sprintf("size=%d", f.Size), f.NSPerGraph, ns, ok)
	}

	newSim := map[string]benchMaxTokens{}
	for _, m := range newRep.MaxTokens {
		newSim[m.System] = m
	}
	for _, m := range oldRep.MaxTokens {
		n, ok := newSim[m.System]
		add("sim", m.System+"/loop_aware", m.LoopAwareNS, n.LoopAwareNS, ok)
		add("sim", m.System+"/firing", m.FiringNS, n.FiringNS, ok)
	}

	add("alloc", "first_fit_150", oldRep.AllocFirstFitNS, newRep.AllocFirstFitNS,
		oldRep.AllocFirstFitNS > 0 && newRep.AllocFirstFitNS > 0)

	newGrid := map[string]benchGrid{}
	for _, g := range newRep.Grid {
		newGrid[g.System] = g
	}
	for _, g := range oldRep.Grid {
		n, ok := newGrid[g.System]
		add("grid", g.System+"/planned", g.PlannedNS, n.PlannedNS, ok)
		add("grid", g.System+"/naive", g.NaiveNS, n.NaiveNS, ok)
	}

	if oldRep.Service != nil && newRep.Service != nil {
		newSvc := map[string]benchServiceSystem{}
		for _, s := range newRep.Service.Systems {
			newSvc[s.System] = s
		}
		for _, s := range oldRep.Service.Systems {
			n, ok := newSvc[s.System]
			add("service", s.System+"/cold", s.ColdNS, n.ColdNS, ok)
			add("service", s.System+"/warm", s.WarmNS, n.WarmNS, ok)
		}
	}

	if oldRep.Incremental != nil && newRep.Incremental != nil {
		add("incremental", "cold", oldRep.Incremental.ColdNS, newRep.Incremental.ColdNS, true)
		add("incremental", "warm", oldRep.Incremental.WarmNS, newRep.Incremental.WarmNS, true)
	}
	return rows
}

// formatCompareMarkdown renders the comparison as a markdown document:
// every shared series with old/new times and ratio, regressions flagged,
// and a short verdict line CI logs surface well.
func formatCompareMarkdown(title, oldPath, newPath string, rows []compareRow, threshold float64) (string, []compareRow) {
	var regressions []compareRow
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", title)
	fmt.Fprintf(&b, "Old: `%s`\nNew: `%s`\nThreshold: %.2fx\n\n", oldPath, newPath, threshold)
	fmt.Fprintf(&b, "| section | series | old | new | ratio | |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		ratio := r.ratio()
		flag := ""
		switch {
		case ratio == 0:
			flag = "n/a"
		case ratio > threshold:
			flag = "REGRESSION"
			regressions = append(regressions, r)
		case ratio < 1/threshold:
			flag = "improved"
		}
		oldV, newV := r.values()
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %.2f | %s |\n",
			r.Section, r.Key, oldV, newV, ratio, flag)
	}
	fmt.Fprintf(&b, "\n")
	if len(regressions) == 0 {
		fmt.Fprintf(&b, "No regressions beyond %.2fx across %d shared series.\n", threshold, len(rows))
	} else {
		fmt.Fprintf(&b, "%d of %d shared series regressed beyond %.2fx:\n\n", len(regressions), len(rows), threshold)
		for _, r := range regressions {
			oldV, newV := r.values()
			fmt.Fprintf(&b, "- %s/%s: %s -> %s (%.2fx)\n", r.Section, r.Key, oldV, newV, r.ratio())
		}
	}
	return b.String(), regressions
}

// formatNS prints a nanosecond count with a human unit, stable enough for
// tables (three significant-ish digits).
func formatNS(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// runCompare is the -compare entry point; returns the process exit code.
func runCompare(oldPath, newPath, mdPath string, threshold float64) int {
	if threshold <= 1 {
		fmt.Fprintf(os.Stderr, "sdfbench: -threshold must be > 1 (got %v)\n", threshold)
		return 2
	}
	oldIsLoad, err := isLoadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdfbench:", err)
		return 1
	}
	newIsLoad, err := isLoadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdfbench:", err)
		return 1
	}
	if oldIsLoad != newIsLoad {
		fmt.Fprintln(os.Stderr, "sdfbench: cannot compare a load report against a bench trajectory")
		return 1
	}

	var rows []compareRow
	title := "Benchmark comparison"
	if oldIsLoad {
		title = "Load comparison"
		oldRep, err := loadLoadReport(oldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdfbench:", err)
			return 1
		}
		newRep, err := loadLoadReport(newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdfbench:", err)
			return 1
		}
		rows = compareLoadRows(oldRep, newRep)
	} else {
		oldRep, err := loadReport(oldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdfbench:", err)
			return 1
		}
		newRep, err := loadReport(newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdfbench:", err)
			return 1
		}
		rows = compareRows(oldRep, newRep)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "sdfbench: the two reports share no comparable series")
		return 1
	}
	md, regressions := formatCompareMarkdown(title, oldPath, newPath, rows, threshold)
	if mdPath == "" {
		fmt.Print(md)
	} else {
		if err := os.WriteFile(mdPath, []byte(md), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sdfbench:", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "sdfbench: wrote", mdPath)
	}
	if len(regressions) > 0 {
		return 3
	}
	return 0
}
