package main

// sdfbench -compare old.json new.json: diff two BENCH_*.json trajectory
// files phase by phase and system by system, render a markdown report, and
// gate on a wall-time regression threshold so CI (or a human before
// merging) can tell "this PR made the pipeline slower" from noise.
//
// Exit codes: 0 no regressions, 1 operational error (unreadable or
// malformed file), 3 at least one comparable series regressed beyond the
// threshold. Only series present in BOTH files are compared — growing the
// trajectory schema never breaks old baselines.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// compareRow is one comparable wall-time series across the two reports.
type compareRow struct {
	Section string
	Key     string
	OldNS   int64
	NewNS   int64
}

// ratio is new/old; 0 when the old side is empty (incomparable).
func (r compareRow) ratio() float64 {
	if r.OldNS <= 0 {
		return 0
	}
	return float64(r.NewNS) / float64(r.OldNS)
}

func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareRows pairs every wall-time series the two reports share. Keys are
// stable names, so rows line up even when the experiment order changed.
func compareRows(oldRep, newRep *benchReport) []compareRow {
	var rows []compareRow
	add := func(section, key string, oldNS, newNS int64, ok bool) {
		if ok {
			rows = append(rows, compareRow{Section: section, Key: key, OldNS: oldNS, NewNS: newNS})
		}
	}

	newPhase := map[string]int64{}
	for _, p := range newRep.Phases {
		newPhase[p.Name] = p.WallNS
	}
	for _, p := range oldRep.Phases {
		ns, ok := newPhase[p.Name]
		add("phase", p.Name, p.WallNS, ns, ok)
	}

	newSys := map[string]int64{}
	for _, s := range newRep.Table1Systems {
		newSys[s.System] = s.WallNS
	}
	for _, s := range oldRep.Table1Systems {
		ns, ok := newSys[s.System]
		add("table1", s.System, s.WallNS, ns, ok)
	}

	newFig := map[int]int64{}
	for _, f := range newRep.Fig27 {
		newFig[f.Size] = f.NSPerGraph
	}
	for _, f := range oldRep.Fig27 {
		ns, ok := newFig[f.Size]
		add("fig27", fmt.Sprintf("size=%d", f.Size), f.NSPerGraph, ns, ok)
	}

	newSim := map[string]benchMaxTokens{}
	for _, m := range newRep.MaxTokens {
		newSim[m.System] = m
	}
	for _, m := range oldRep.MaxTokens {
		n, ok := newSim[m.System]
		add("sim", m.System+"/loop_aware", m.LoopAwareNS, n.LoopAwareNS, ok)
		add("sim", m.System+"/firing", m.FiringNS, n.FiringNS, ok)
	}

	add("alloc", "first_fit_150", oldRep.AllocFirstFitNS, newRep.AllocFirstFitNS,
		oldRep.AllocFirstFitNS > 0 && newRep.AllocFirstFitNS > 0)

	newGrid := map[string]benchGrid{}
	for _, g := range newRep.Grid {
		newGrid[g.System] = g
	}
	for _, g := range oldRep.Grid {
		n, ok := newGrid[g.System]
		add("grid", g.System+"/planned", g.PlannedNS, n.PlannedNS, ok)
		add("grid", g.System+"/naive", g.NaiveNS, n.NaiveNS, ok)
	}

	if oldRep.Service != nil && newRep.Service != nil {
		newSvc := map[string]benchServiceSystem{}
		for _, s := range newRep.Service.Systems {
			newSvc[s.System] = s
		}
		for _, s := range oldRep.Service.Systems {
			n, ok := newSvc[s.System]
			add("service", s.System+"/cold", s.ColdNS, n.ColdNS, ok)
			add("service", s.System+"/warm", s.WarmNS, n.WarmNS, ok)
		}
	}

	if oldRep.Incremental != nil && newRep.Incremental != nil {
		add("incremental", "cold", oldRep.Incremental.ColdNS, newRep.Incremental.ColdNS, true)
		add("incremental", "warm", oldRep.Incremental.WarmNS, newRep.Incremental.WarmNS, true)
	}
	return rows
}

// formatCompareMarkdown renders the comparison as a markdown document:
// every shared series with old/new times and ratio, regressions flagged,
// and a short verdict line CI logs surface well.
func formatCompareMarkdown(oldPath, newPath string, rows []compareRow, threshold float64) (string, []compareRow) {
	var regressions []compareRow
	var b strings.Builder
	fmt.Fprintf(&b, "# Benchmark comparison\n\n")
	fmt.Fprintf(&b, "Old: `%s`\nNew: `%s`\nThreshold: %.2fx\n\n", oldPath, newPath, threshold)
	fmt.Fprintf(&b, "| section | series | old | new | ratio | |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		ratio := r.ratio()
		flag := ""
		switch {
		case ratio == 0:
			flag = "n/a"
		case ratio > threshold:
			flag = "REGRESSION"
			regressions = append(regressions, r)
		case ratio < 1/threshold:
			flag = "improved"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %.2f | %s |\n",
			r.Section, r.Key, formatNS(r.OldNS), formatNS(r.NewNS), ratio, flag)
	}
	fmt.Fprintf(&b, "\n")
	if len(regressions) == 0 {
		fmt.Fprintf(&b, "No regressions beyond %.2fx across %d shared series.\n", threshold, len(rows))
	} else {
		fmt.Fprintf(&b, "%d of %d shared series regressed beyond %.2fx:\n\n", len(regressions), len(rows), threshold)
		for _, r := range regressions {
			fmt.Fprintf(&b, "- %s/%s: %s -> %s (%.2fx)\n", r.Section, r.Key, formatNS(r.OldNS), formatNS(r.NewNS), r.ratio())
		}
	}
	return b.String(), regressions
}

// formatNS prints a nanosecond count with a human unit, stable enough for
// tables (three significant-ish digits).
func formatNS(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// runCompare is the -compare entry point; returns the process exit code.
func runCompare(oldPath, newPath, mdPath string, threshold float64) int {
	if threshold <= 1 {
		fmt.Fprintf(os.Stderr, "sdfbench: -threshold must be > 1 (got %v)\n", threshold)
		return 2
	}
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdfbench:", err)
		return 1
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdfbench:", err)
		return 1
	}
	rows := compareRows(oldRep, newRep)
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "sdfbench: the two trajectory files share no comparable series")
		return 1
	}
	md, regressions := formatCompareMarkdown(oldPath, newPath, rows, threshold)
	if mdPath == "" {
		fmt.Print(md)
	} else {
		if err := os.WriteFile(mdPath, []byte(md), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sdfbench:", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "sdfbench: wrote", mdPath)
	}
	if len(regressions) > 0 {
		return 3
	}
	return 0
}
