package main

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/service"
	"repro/internal/systems"
)

// benchService is the sdfd daemon micro-section of the trajectory file:
// cold (pipeline) versus warm (cache hit) compile latency per system, and
// sustained request throughput with the cache hot and every client slot
// busy.
type benchService struct {
	Systems []benchServiceSystem `json:"systems"`
	// SaturationRPS is warm requests/sec with SaturationClients concurrent
	// clients hammering one digest.
	SaturationRPS      float64 `json:"saturation_rps"`
	SaturationClients  int     `json:"saturation_clients"`
	SaturationRequests int64   `json:"saturation_requests"`
}

type benchServiceSystem struct {
	System string `json:"system"`
	ColdNS int64  `json:"cold_ns"`
	WarmNS int64  `json:"warm_ns"`
}

// benchServiceSection runs the service benchmarks against an in-process
// sdfd over a loopback HTTP listener, so the numbers include the real JSON
// and HTTP overhead a deployment pays but no scheduling noise from a
// separate process.
func benchServiceSection(quick bool) (*benchService, error) {
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	client := &service.Client{BaseURL: ts.URL}

	budget := 100 * time.Millisecond
	saturation := 500 * time.Millisecond
	clients := 16
	if quick {
		budget = 10 * time.Millisecond
		saturation = 50 * time.Millisecond
		clients = 4
	}

	out := &benchService{SaturationClients: clients}
	var warmReq service.CompileRequest
	for _, g := range []benchServiceGraph{
		{"cddat", systems.CDDAT()},
		{"satrec", systems.SatelliteReceiver()},
		{"homog4x4", systems.Homogeneous(4, 4)},
	} {
		text, err := sdfio.CanonicalString(g.graph)
		if err != nil {
			return nil, err
		}
		req := service.CompileRequest{Graph: text}
		// Cold: first request for this digest runs the pipeline.
		start := time.Now()
		if _, err := client.Compile(req, false); err != nil {
			return nil, fmt.Errorf("cold compile %s: %w", g.name, err)
		}
		cold := time.Since(start).Nanoseconds()
		// Warm: every further request is a cache hit.
		warm := timeNsPerOp(budget, func() {
			if _, err := client.Compile(req, false); err != nil {
				panic(err)
			}
		})
		out.Systems = append(out.Systems, benchServiceSystem{System: g.name, ColdNS: cold, WarmNS: warm})
		warmReq = req
	}

	// Saturation: concurrent clients re-requesting a hot digest for a fixed
	// wall budget. Counts only completed requests.
	var done atomic.Int64
	deadline := time.Now().Add(saturation)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, err := client.Compile(warmReq, false); err != nil {
					return
				}
				done.Add(1)
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	out.SaturationRequests = done.Load()
	if elapsed > 0 {
		out.SaturationRPS = float64(done.Load()) / elapsed.Seconds()
	}
	return out, nil
}

type benchServiceGraph struct {
	name  string
	graph *sdf.Graph
}
