// Command sdfload is the open-loop saturation load harness for sdfd.
//
// It drives a live daemon through staged RPS ramps with a deterministic
// workload mix — cold compiles, warm cache hits, single-actor edits, and
// /v1/grid bursts — scrapes /metrics between steps, and stops at the first
// step that violates an SLO: the saturation knee. The run is written as a
// versioned LOAD_<label>.json report that sdfbench -compare can diff
// against a baseline (docs/EXPERIMENTS.md documents the schema and
// methodology; docs/SERVICE.md the server side).
//
// Usage:
//
//	sdfload -addr 127.0.0.1:8347 [flags]
//	sdfload -addrs a:1,b:2,c:3 [flags]       # spread over cluster peers
//	sdfload -spawn ./bin/sdfd [flags]        # launch sdfd itself on port 0
//
// With -spawn, sdfload execs the given sdfd binary with -addr 127.0.0.1:0
// (plus any -spawn-args), waits for its SDFD_READY stdout line to learn the
// ephemeral port, runs the ramp, and shuts the daemon down afterwards —
// no fixed ports, safe for parallel CI jobs.
//
// With -addrs, the same deterministic workload is spread across several sdfd
// cluster peers: each op's peer is a pure function of (seed, op index), so a
// multi-target report replays exactly, /metrics deltas sum over the fleet,
// and the report gains a per-target breakdown of ok/shed/error counts.
//
// Key flags:
//
//	-label s        report label; output defaults to LOAD_<label>.json
//	-out path       explicit output path ("-" for stdout only)
//	-seed n         workload seed (same seed => byte-identical traffic)
//	-mix c,w,e,g    op mix weights cold,warm,edit,grid (default 1,6,2,1)
//	-start-rps f    first ramp step's offered RPS
//	-step-rps f     RPS added per step
//	-steps n        maximum number of ramp steps
//	-hold d         duration each step holds its rate
//	-workers n      client-side concurrency bound
//	-slo-p99 d      p99 latency SLO (0 disables)
//	-slo-achieved f achieved/offered RPS floor (default 0.9)
//	-selfcheck      verify harness invariants over the finished report;
//	                exit 3 when they fail
//	-short          preset: tiny smoke ramp for make load-short
//
// Exit codes: 0 run completed (saturated or not — the knee is data),
// 1 operational error, 2 flag error, 3 selfcheck failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/load"
)

// realClock injects the wall clock into the load engine. The engine itself
// is in the bannedcall lint set and cannot construct this.
type realClock struct{}

//lint:ignore bannedcall realClock IS the injection point the ban funnels callers toward
func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("sdfload", flag.ContinueOnError)
	addr := fs.String("addr", "", "address of a running sdfd (host:port)")
	addrs := fs.String("addrs", "", "comma-separated cluster peer addresses to spread the workload over")
	spawn := fs.String("spawn", "", "path to an sdfd binary to launch on an ephemeral port")
	spawnArgs := fs.String("spawn-args", "", "extra space-separated flags for the spawned sdfd")
	label := fs.String("label", "dev", "report label")
	out := fs.String("out", "", `output path (default "LOAD_<label>.json", "-" for stdout only)`)
	seed := fs.Int64("seed", 1, "workload seed")
	mixFlag := fs.String("mix", "1,6,2,1", "op mix weights: cold,warm,edit,grid")
	gridEntries := fs.Int("grid-entries", 6, "option entries per /v1/grid burst")
	workers := fs.Int("workers", 64, "client-side concurrency bound")
	startRPS := fs.Float64("start-rps", 50, "first step's offered RPS")
	stepRPS := fs.Float64("step-rps", 50, "RPS added per step")
	steps := fs.Int("steps", 8, "maximum ramp steps")
	hold := fs.Duration("hold", 10*time.Second, "hold duration per step")
	sloP99 := fs.Duration("slo-p99", 0, "p99 latency SLO (0 disables)")
	sloAchieved := fs.Float64("slo-achieved", 0.9, "achieved/offered RPS floor")
	selfcheck := fs.Bool("selfcheck", false, "verify harness invariants; exit 3 on failure")
	short := fs.Bool("short", false, "preset: tiny smoke ramp (overrides ramp flags)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	if code := core.ParseCLI(fs, args); code >= 0 {
		return code
	}
	if *short {
		*startRPS, *stepRPS, *steps, *hold = 20, 20, 2, 1500*time.Millisecond
	}

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(stderr, "sdfload: %v\n", err)
		return 2
	}
	modes := 0
	for _, set := range []bool{*addr != "", *addrs != "", *spawn != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(stderr, "sdfload: need exactly one of -addr, -addrs, or -spawn")
		return 2
	}

	base := "http://" + *addr
	if *spawn != "" {
		daemon, readyAddr, err := spawnDaemon(*spawn, *spawnArgs, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "sdfload: %v\n", err)
			return 1
		}
		defer daemon.stop()
		base = "http://" + readyAddr
	}

	wl, err := load.NewWorkload(*seed, mix, *gridEntries)
	if err != nil {
		fmt.Fprintf(stderr, "sdfload: %v\n", err)
		return 1
	}
	client := &http.Client{Timeout: *timeout}
	var (
		sender load.Sender
		multi  *load.MultiHTTPSender
		target = base
	)
	if *addrs != "" {
		var bases []string
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				bases = append(bases, "http://"+a)
			}
		}
		multi, err = load.NewMultiHTTPSender(bases, *seed, func(u string) *load.HTTPSender {
			return &load.HTTPSender{BaseURL: u, Client: client}
		})
		if err != nil {
			fmt.Fprintf(stderr, "sdfload: %v\n", err)
			return 2
		}
		sender = multi
		target = fmt.Sprintf("%d peers (%s)", len(bases), strings.Join(bases, ", "))
	} else {
		sender = &load.HTTPSender{BaseURL: base, Client: client}
	}
	if _, err := sender.Metrics(); err != nil {
		fmt.Fprintf(stderr, "sdfload: target %s not scrapeable: %v\n", target, err)
		return 1
	}

	fmt.Fprintf(stderr, "sdfload: ramping %s: %d steps x %v from %.4g rps (+%.4g/step), mix %+v, seed %d\n",
		target, *steps, *hold, *startRPS, *stepRPS, mix, *seed)
	rep, err := load.Run(load.Config{
		Label:    *label,
		Seed:     *seed,
		Clock:    realClock{},
		Sender:   sender,
		Workload: wl,
		Workers:  *workers,
		SLO:      load.SLO{MaxP99: *sloP99, MinAchievedFrac: *sloAchieved},
		OnStep: func(st load.StepResult) {
			fmt.Fprintf(stderr, "sdfload: %8.4g rps offered, %8.1f achieved | p50 %v p99 %v max %v | ok %d shed %d err %d%s\n",
				st.TargetRPS, st.AchievedRPS,
				time.Duration(st.Latency.P50), time.Duration(st.Latency.P99), time.Duration(st.Latency.Max),
				st.OK, st.Shed, st.Errors, violationNote(st.Violations))
		},
	}, load.Steps(*startRPS, *stepRPS, *steps, *hold))
	if err != nil {
		fmt.Fprintf(stderr, "sdfload: %v\n", err)
		return 1
	}
	//lint:ignore bannedcall report metadata stamp, outside the measured engine
	rep.Date = time.Now().UTC().Format("2006-01-02T15:04:05Z")
	if multi != nil {
		rep.Targets = multi.Targets()
		for _, t := range rep.Targets {
			fmt.Fprintf(stderr, "sdfload: target %s: sent %d ok %d shed %d err %d\n",
				t.Target, t.Sent, t.OK, t.Shed, t.Errors)
		}
	}

	if rep.Knee.Saturated {
		fmt.Fprintf(stderr, "sdfload: saturated — knee at %.4g rps (%s)\n", rep.Knee.RPS, rep.Knee.Reason)
	} else {
		fmt.Fprintf(stderr, "sdfload: not saturated — sustained %.4g rps (%s)\n", rep.Knee.RPS, rep.Knee.Reason)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "sdfload: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	path := *out
	if path == "" {
		path = "LOAD_" + *label + ".json"
	}
	if path == "-" {
		stdout.Write(data)
	} else {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "sdfload: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "sdfload: wrote %s\n", path)
	}

	if *selfcheck {
		if errs := rep.SelfCheck(); len(errs) != 0 {
			for _, e := range errs {
				fmt.Fprintf(stderr, "sdfload: selfcheck: %v\n", e)
			}
			return 3
		}
		fmt.Fprintln(stderr, "sdfload: selfcheck passed")
	}
	return 0
}

func violationNote(v []string) string {
	if len(v) == 0 {
		return ""
	}
	return " | SLO VIOLATION: " + strings.Join(v, "; ")
}

// parseMix parses "c,w,e,g" into mix weights.
func parseMix(s string) (load.Mix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return load.Mix{}, fmt.Errorf("-mix wants 4 comma-separated weights (cold,warm,edit,grid), got %q", s)
	}
	var w [4]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return load.Mix{}, fmt.Errorf("-mix weight %q must be a non-negative integer", p)
		}
		w[i] = n
	}
	return load.Mix{Cold: w[0], Warm: w[1], Edit: w[2], Grid: w[3]}, nil
}

// daemon is a spawned sdfd under sdfload's supervision.
type daemon struct {
	cmd *exec.Cmd
}

func (d *daemon) stop() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Signal(os.Interrupt)
	}
	done := make(chan struct{})
	go func() { _ = d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = d.cmd.Process.Kill()
		<-done
	}
}

// spawnDaemon launches the sdfd binary on an ephemeral port and waits for
// its SDFD_READY readiness line to learn the resolved address.
func spawnDaemon(bin, extraArgs string, stderr *os.File) (*daemon, string, error) {
	args := []string{"-addr", "127.0.0.1:0"}
	if extraArgs != "" {
		args = append(args, strings.Fields(extraArgs)...)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("spawning %s: %w", bin, err)
	}
	d := &daemon{cmd: cmd}

	type ready struct {
		addr string
		err  error
	}
	ch := make(chan ready, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "SDFD_READY addr="); ok {
				ch <- ready{addr: strings.TrimSpace(rest)}
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- ready{err: fmt.Errorf("%s exited before printing SDFD_READY", bin)}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			d.stop()
			return nil, "", r.err
		}
		return d, r.addr, nil
	case <-time.After(30 * time.Second):
		d.stop()
		return nil, "", fmt.Errorf("timed out waiting for SDFD_READY from %s", bin)
	}
}
